(* Integration and stress tests: randomized workloads, link churn,
   nested RPC chains, and cross-backend determinism.  Each test runs on
   all three backends; randomness comes only from the engine seed, so
   every failure is replayable. *)

open Sim
module P = Lynx.Process
module V = Lynx.Value

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let on_all name speed f =
  List.map
    (fun (module W : Harness.Backend_world.WORLD) ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name W.name) speed (fun () ->
          f (module W : Harness.Backend_world.WORLD)))
    Harness.Backend_world.all

(* The server understands three operations; each client call carries a
   random operation and operand, and checks the arithmetic on return. *)
let storm ?(seed = 42) ~clients ~calls (module W : Harness.Backend_world.WORLD)
    =
  let e = Engine.create ~seed () in
  let w = W.create e ~nodes:(clients + 2) in
  let correct = ref 0 and wrong = ref 0 in
  let last_done = ref 0 in
  let server =
    W.spawn w ~daemon:true ~node:0 ~name:"server" (fun p ->
        let rec wait_links () =
          let ls = P.live_links p in
          if List.length ls >= clients then ls
          else begin
            P.sleep p (Time.ms 1);
            wait_links ()
          end
        in
        let links = wait_links () in
        List.iter
          (fun l ->
            P.open_queue p l;
            P.serve p l ~op:"double" (function
              | [ V.Int x ] -> [ V.Int (2 * x) ]
              | _ -> []);
            P.serve p l ~op:"neg" (function
              | [ V.Int x ] -> [ V.Int (-x) ]
              | _ -> []);
            P.serve p l ~op:"len" (function
              | [ V.Str s ] -> [ V.Int (String.length s) ]
              | _ -> []))
          links;
        P.sleep p (Time.sec 120))
  in
  let members =
    List.init clients (fun i ->
        W.spawn w ~daemon:true ~node:(i + 1) ~name:(Printf.sprintf "c%d" i)
          (fun p ->
            let rec wait_link () =
              match P.live_links p with
              | l :: _ -> l
              | [] ->
                P.sleep p (Time.ms 1);
                wait_link ()
            in
            let lnk = wait_link () in
            let rng = Rng.create (seed + (i * 7919)) in
            for _ = 1 to calls do
              let t0 = Engine.now e in
              (match Rng.int rng 3 with
              | 0 ->
                let x = Rng.int rng 1000 in
                (match P.call p lnk ~op:"double" [ V.Int x ] with
                | [ V.Int r ] when r = 2 * x -> incr correct
                | _ -> incr wrong)
              | 1 ->
                let x = Rng.int rng 1000 in
                (match P.call p lnk ~op:"neg" [ V.Int x ] with
                | [ V.Int r ] when r = -x -> incr correct
                | _ -> incr wrong)
              | _ ->
                let n = Rng.int rng 200 in
                (match P.call p lnk ~op:"len" [ V.Str (String.make n 'x') ] with
                | [ V.Int r ] when r = n -> incr correct
                | _ -> incr wrong));
              (* Order-sensitive fingerprint over every call's latency:
                 two runs are identical iff this matches. *)
              last_done :=
                (!last_done * 31)
                + Time.to_ns (Time.sub (Engine.now e) t0)
            done))
  in
  ignore
    (Engine.spawn e ~name:"driver" (fun () ->
         List.iter (fun m -> ignore (W.link_between w m server)) members));
  Engine.run e;
  (!correct, !wrong, !last_done)

let storm_tests =
  on_all "randomized RPC storm: 3 clients x 15 calls" `Quick
    (fun (module W) ->
      let correct, wrong, _ = storm ~clients:3 ~calls:15 (module W) in
      checki "all correct" 45 correct;
      checki "none wrong" 0 wrong)
  @ on_all "storm is deterministic per seed" `Quick (fun (module W) ->
        let _, _, t1 = storm ~seed:9 ~clients:2 ~calls:5 (module W) in
        let _, _, t2 = storm ~seed:9 ~clients:2 ~calls:5 (module W) in
        let _, _, t3 = storm ~seed:10 ~clients:2 ~calls:5 (module W) in
        checkb "same seed, same final time" true (t1 = t2);
        (* Different seeds draw different payload sizes, so the virtual
           end time differs. *)
        checkb "different seed, different time" true (t1 <> t3))

(* A link end relayed through a chain of processes, then used. *)
let relay_chain ~hops (module W : Harness.Backend_world.WORLD) =
  let e = Engine.create () in
  let w = W.create e ~nodes:(hops + 3) in
  let ok = ref false in
  let origin_link = Sync.Ivar.create e in
  let origin =
    W.spawn w ~daemon:true ~node:0 ~name:"origin" (fun p ->
        let first = Sync.Ivar.read origin_link in
        let near, far = P.new_link p in
        ignore (P.call p first ~op:"relay" [ V.Link near ]);
        let ping = P.await_request p ~links:[ far ] () in
        ping.P.in_reply [ V.Str "origin says hi" ])
  in
  let relays =
    List.init hops (fun i ->
        W.spawn w ~daemon:true ~node:(i + 1) ~name:(Printf.sprintf "hop%d" i)
          (fun p ->
            let inc = P.await_request p () in
            match inc.P.in_args with
            | [ V.Link moved ] ->
              inc.P.in_reply [];
              (* Forward on the second live link (the one to the next
                 hop), distinguishable by id from the inbound one. *)
              let rec next_link () =
                match
                  List.filter
                    (fun (l : Lynx.Link.t) ->
                      l.Lynx.Link.lid <> inc.P.in_link.Lynx.Link.lid
                      && l.Lynx.Link.lid <> moved.Lynx.Link.lid)
                    (P.live_links p)
                with
                | l :: _ -> l
                | [] ->
                  P.sleep p (Time.ms 1);
                  next_link ()
              in
              ignore (P.call p (next_link ()) ~op:"relay" [ V.Link moved ]);
              P.sleep p (Time.ms 500)
            | _ -> inc.P.in_reply []))
  in
  let final =
    W.spawn w ~daemon:true ~node:(hops + 1) ~name:"final" (fun p ->
        let inc = P.await_request p () in
        match inc.P.in_args with
        | [ V.Link moved ] ->
          inc.P.in_reply [];
          (match P.call p moved ~op:"ping" [] with
          | [ V.Str "origin says hi" ] -> ok := true
          | _ -> ())
        | _ -> inc.P.in_reply [])
  in
  let stations = relays @ [ final ] in
  ignore
    (Engine.spawn e ~name:"driver" (fun () ->
         (* origin -> hop0 -> hop1 -> ... -> final *)
         let rec wire prev = function
           | [] -> ()
           | m :: rest ->
             ignore (W.link_between w prev m);
             wire m rest
         in
         (match stations with
         | first :: _ ->
           let l, _ = W.link_between w origin first in
           Sync.Ivar.fill origin_link l
         | [] -> ());
         wire (List.hd stations) (List.tl stations)));
  Engine.run e;
  !ok

let relay_tests =
  on_all "link end relayed through 4 hops still connects" `Quick
    (fun (module W) -> checkb "connected" true (relay_chain ~hops:4 (module W)))
  @ on_all "link end relayed through 1 hop still connects" `Quick
      (fun (module W) ->
        checkb "connected" true (relay_chain ~hops:1 (module W)))

(* Client generations: processes are born, make calls, and die; the
   server must shrug off the churn ("long-lived system servers"). *)
let churn_tests =
  on_all "server survives generations of dying clients" `Quick
    (fun (module W) ->
      let e = Engine.create () in
      let w = W.create e ~nodes:4 in
      let served = ref 0 in
      let server =
        W.spawn w ~daemon:true ~node:0 ~name:"server" (fun p ->
            let rec serve () =
              (match P.await_request p () with
              | inc ->
                incr served;
                inc.P.in_reply [ V.Int !served ]
              | exception Lynx.Excn.Link_destroyed -> ());
              serve ()
            in
            try serve () with Lynx.Excn.Process_terminated -> ())
      in
      (* Generations run one after another from a driver fiber. *)
      ignore
        (Engine.spawn e ~name:"driver" (fun () ->
             for g = 1 to 5 do
               let client =
                 W.spawn w ~daemon:true ~node:1
                   ~name:(Printf.sprintf "gen%d" g) (fun p ->
                     let rec wait_link () =
                       match P.live_links p with
                       | l :: _ -> l
                       | [] ->
                         P.sleep p (Time.ms 1);
                         wait_link ()
                     in
                     let lnk = wait_link () in
                     ignore (P.call p lnk ~op:"hit" [])
                     (* dies here: the link dies with it *))
               in
               ignore (W.link_between w client server);
               (* Wait out this generation before starting the next
                  (SODA allows one process per node). *)
               Engine.sleep e (Time.ms 400)
             done));
      Engine.run e;
      checki "five generations served" 5 !served)

(* Nested RPC: stage i calls stage i+1 before replying — a call chain
   [depth] processes deep, exercising reentrant dispatch. *)
let nested_tests =
  on_all "nested RPC five processes deep" `Quick (fun (module W) ->
      let depth = 5 in
      let e = Engine.create () in
      let w = W.create e ~nodes:(depth + 2) in
      let result = ref 0 in
      let stages =
        List.init depth (fun i ->
            W.spawn w ~daemon:true ~node:(i + 1)
              ~name:(Printf.sprintf "stage%d" i) (fun p ->
                let inc = P.await_request p () in
                match inc.P.in_args with
                | [ V.Int x ] ->
                  let forward =
                    List.filter
                      (fun (l : Lynx.Link.t) ->
                        l.Lynx.Link.lid <> inc.P.in_link.Lynx.Link.lid)
                      (P.live_links p)
                  in
                  let out =
                    match forward with
                    | next :: _ -> (
                      match P.call p next ~op:"add" [ V.Int (x + 1) ] with
                      | [ V.Int y ] -> y
                      | _ -> -1)
                    | [] -> x + 1
                  in
                  inc.P.in_reply [ V.Int out ]
                | _ -> inc.P.in_reply []))
      in
      let source =
        W.spawn w ~node:0 ~name:"source" (fun p ->
            let rec wait_link () =
              match P.live_links p with
              | l :: _ -> l
              | [] ->
                P.sleep p (Time.ms 1);
                wait_link ()
            in
            match P.call p (wait_link ()) ~op:"add" [ V.Int 0 ] with
            | [ V.Int r ] -> result := r
            | _ -> ())
      in
      ignore
        (Engine.spawn e ~name:"driver" (fun () ->
             let rec wire prev = function
               | [] -> ()
               | m :: rest ->
                 ignore (W.link_between w prev m);
                 wire m rest
             in
             ignore (W.link_between w source (List.hd stages));
             wire (List.hd stages) (List.tl stages)));
      Engine.run e;
      checki "x incremented at every stage" depth !result)

(* Many links between one pair of processes: under SODA this presses on
   the per-pair outstanding-request limit (§4.2.1); everywhere it checks
   per-link queue independence. *)
let multilink_tests =
  on_all "six links between one pair all work concurrently" `Quick
    (fun (module W) ->
      let n_links = 6 in
      let e = Engine.create () in
      let w = W.create e ~nodes:4 in
      let answers = ref [] in
      let server =
        W.spawn w ~daemon:true ~node:0 ~name:"server" (fun p ->
            let rec wait_links () =
              let ls = P.live_links p in
              if List.length ls >= n_links then ls
              else begin
                P.sleep p (Time.ms 1);
                wait_links ()
              end
            in
            List.iter
              (fun l ->
                P.serve p l ~op:"which" (fun _ ->
                    [ V.Int l.Lynx.Link.lid ]))
              (wait_links ());
            P.sleep p (Time.sec 60))
      in
      let client =
        W.spawn w ~daemon:true ~node:1 ~name:"client" (fun p ->
            let rec wait_links () =
              let ls = P.live_links p in
              if List.length ls >= n_links then ls
              else begin
                P.sleep p (Time.ms 1);
                wait_links ()
              end
            in
            let links = wait_links () in
            let fin = Sync.Ivar.create e in
            let remaining = ref (List.length links) in
            List.iter
              (fun l ->
                P.spawn_thread p (fun () ->
                    (match P.call p l ~op:"which" [] with
                    | [ V.Int _ ] -> answers := l.Lynx.Link.lid :: !answers
                    | _ -> ());
                    decr remaining;
                    if !remaining = 0 then Sync.Ivar.fill fin ()))
              links;
            Sync.Ivar.read fin)
      in
      ignore
        (Engine.spawn e ~name:"driver" (fun () ->
             for _ = 1 to n_links do
               ignore (W.link_between w client server)
             done));
      Engine.run e;
      checki "all links answered" n_links (List.length !answers))

(* qcheck: for random seeds, a two-client storm completes with every
   answer correct on every backend. *)
let storm_property (module W : Harness.Backend_world.WORLD) =
  QCheck.Test.make
    ~name:(Printf.sprintf "storm correct for any seed [%s]" W.name)
    ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let correct, wrong, _ = storm ~seed ~clients:2 ~calls:6 (module W) in
      correct = 12 && wrong = 0)

let () =
  Alcotest.run "integration"
    [
      ("storm", storm_tests);
      ("relay", relay_tests);
      ("churn", churn_tests);
      ("nested", nested_tests);
      ("multilink", multilink_tests);
      ( "properties",
        List.map
          (fun b -> QCheck_alcotest.to_alcotest (storm_property b))
          Harness.Backend_world.all );
    ]
