(* Tests for the Charlotte kernel simulator (paper §3.1 semantics). *)

open Sim
open Charlotte.Types
module K = Charlotte.Kernel

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let check_status msg exp got =
  Alcotest.check Alcotest.string msg (status_to_string exp) (status_to_string got)

(* Run a two-process scenario: [a] and [b] get their pids and a link end
   each; the engine runs to completion. *)
let two_procs ?(on_crash = `Raise) a b =
  let e = Engine.create ~on_crash () in
  let k = K.create e ~nodes:4 () in
  let ends = Sync.Ivar.create e in
  let pa =
    K.spawn_process k ~node:0 ~name:"A" (fun pid ->
        let e0, _ = Sync.Ivar.read ends in
        a k pid e0)
  in
  let _pb =
    K.spawn_process k ~node:1 ~name:"B" (fun pid ->
        let _, e1 = Sync.Ivar.read ends in
        b k pid e1)
  in
  ignore
    (Engine.spawn e ~name:"driver" (fun () ->
         match K.make_link k pa with
         | Some (e0, e1) ->
           K.transfer_end k e1 ~to_:(pa + 1);
           Sync.Ivar.fill ends (e0, e1)
         | None -> assert false));
  Engine.run e;
  e

let payload n = Bytes.make n 'p'

let tests =
  [
    Alcotest.test_case "make_link returns two ends of one link" `Quick
      (fun () ->
        let e = Engine.create () in
        let k = K.create e ~nodes:2 () in
        ignore
          (K.spawn_process k ~node:0 ~name:"p" (fun pid ->
               match K.make_link k pid with
               | Some (e0, e1) ->
                 checki "same link" e0.link_id e1.link_id;
                 checkb "sides differ" true (e0.side <> e1.side);
                 checkb "owned" true
                   (K.owner_of k e0 = Some pid && K.owner_of k e1 = Some pid)
               | None -> Alcotest.fail "no link"));
        Engine.run e);
    Alcotest.test_case "send matches receive and transfers data" `Quick
      (fun () ->
        let got = ref Bytes.empty in
        ignore
          (two_procs
             (fun k pid e0 ->
               check_status "send" Ok_done (K.send k pid e0 (payload 10));
               let c = K.wait k pid in
               check_status "sent ok" Ok_done c.c_status;
               checkb "dir" true (c.c_dir = Sent))
             (fun k pid e1 ->
               check_status "recv" Ok_done (K.receive k pid e1 ~max_len:100);
               let c = K.wait k pid in
               check_status "recvd ok" Ok_done c.c_status;
               got := c.c_data));
        checki "len" 10 (Bytes.length !got));
    Alcotest.test_case "completion reports length and direction" `Quick
      (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               ignore (K.send k pid e0 (payload 42));
               let c = K.wait k pid in
               checki "length" 42 c.c_length)
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:100);
               let c = K.wait k pid in
               checki "length" 42 c.c_length;
               checkb "dir" true (c.c_dir = Received))));
    Alcotest.test_case "only one outstanding activity per direction" `Quick
      (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               check_status "first" Ok_done (K.send k pid e0 (payload 1));
               check_status "second busy" E_busy (K.send k pid e0 (payload 1));
               ignore (K.receive k pid e0 ~max_len:10);
               check_status "recv busy" E_busy (K.receive k pid e0 ~max_len:10);
               ignore (K.wait k pid))
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:10);
               ignore (K.wait k pid))));
    Alcotest.test_case "message truncated to receive buffer" `Quick (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               ignore (K.send k pid e0 (payload 100));
               ignore (K.wait k pid))
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:10);
               let c = K.wait k pid in
               check_status "too long" E_too_long c.c_status;
               checki "truncated" 10 (Bytes.length c.c_data))));
    Alcotest.test_case "cancel succeeds before match" `Quick (fun () ->
        let e = Engine.create () in
        let k = K.create e ~nodes:2 () in
        ignore
          (K.spawn_process k ~node:0 ~name:"p" (fun pid ->
               match K.make_link k pid with
               | Some (e0, _e1) ->
                 check_status "recv" Ok_done (K.receive k pid e0 ~max_len:10);
                 check_status "cancel ok" Ok_done (K.cancel k pid e0 Received);
                 check_status "nothing left" E_no_activity
                   (K.cancel k pid e0 Received)
               | None -> Alcotest.fail "no link"));
        Engine.run e);
    Alcotest.test_case "cancel fails after match" `Quick (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               ignore (K.send k pid e0 (payload 5));
               ignore (K.wait k pid))
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:10);
               (* Give the kernel time to match. *)
               Engine.sleep (K.engine k) (Time.ms 5);
               check_status "busy" E_busy (K.cancel k pid e1 Received);
               let c = K.wait k pid in
               check_status "still delivered" Ok_done c.c_status)));
    Alcotest.test_case "cancelled send returns enclosure to owner" `Quick
      (fun () ->
        let e = Engine.create () in
        let k = K.create e ~nodes:2 () in
        ignore
          (K.spawn_process k ~node:0 ~name:"p" (fun pid ->
               let l1 = Option.get (K.make_link k pid) in
               let enc, _ = Option.get (K.make_link k pid) in
               let e0, _ = l1 in
               check_status "send" Ok_done
                 (K.send k pid e0 ~enclosure:enc (payload 1));
               checkb "enclosure in transit" true (K.owner_of k enc = None);
               check_status "cancel" Ok_done (K.cancel k pid e0 Sent);
               checkb "enclosure back" true (K.owner_of k enc = Some pid)));
        Engine.run e);
    Alcotest.test_case "enclosure moves ownership on delivery" `Quick
      (fun () ->
        let owner_after = ref None in
        let enc_ref = ref None in
        ignore
          (two_procs
             (fun k pid e0 ->
               let enc, _ = Option.get (K.make_link k pid) in
               enc_ref := Some enc;
               check_status "send" Ok_done
                 (K.send k pid e0 ~enclosure:enc (payload 1));
               ignore (K.wait k pid);
               (* Stay alive: our death would destroy the enclosed link
                  (we still hold its other end) before B checks it. *)
               Engine.sleep (K.engine k) (Time.ms 50))
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:10);
               let c = K.wait k pid in
               (match c.c_enclosure with
               | Some enc -> owner_after := K.owner_of k enc
               | None -> Alcotest.fail "no enclosure");
               checkb "receiver owns it" true (!owner_after = Some pid))));
    Alcotest.test_case "cannot enclose an end of the carrying link" `Quick
      (fun () ->
        let e = Engine.create () in
        let k = K.create e ~nodes:2 () in
        ignore
          (K.spawn_process k ~node:0 ~name:"p" (fun pid ->
               let e0, e1 = Option.get (K.make_link k pid) in
               check_status "self" E_enclosure_self
                 (K.send k pid e0 ~enclosure:e1 (payload 1))));
        Engine.run e);
    Alcotest.test_case "cannot enclose a busy end" `Quick (fun () ->
        let e = Engine.create () in
        let k = K.create e ~nodes:2 () in
        ignore
          (K.spawn_process k ~node:0 ~name:"p" (fun pid ->
               let e0, _ = Option.get (K.make_link k pid) in
               let enc, _ = Option.get (K.make_link k pid) in
               ignore (K.receive k pid enc ~max_len:10);
               check_status "busy" E_enclosure_busy
                 (K.send k pid e0 ~enclosure:enc (payload 1))));
        Engine.run e);
    Alcotest.test_case "cannot use an end one does not own" `Quick (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               ignore (K.send k pid e0 (payload 1));
               ignore (K.wait k pid))
             (fun k pid e1 ->
               (* Use the peer's end, which we do not own. *)
               let foreign = peer_side e1 in
               check_status "bad end" E_bad_end
                 (K.send k pid foreign (payload 1));
               ignore (K.receive k pid e1 ~max_len:10);
               ignore (K.wait k pid))));
    Alcotest.test_case "destroy completes pending activities" `Quick (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               ignore (K.receive k pid e0 ~max_len:10);
               let c = K.wait k pid in
               check_status "destroyed" E_destroyed c.c_status)
             (fun k pid e1 ->
               Engine.sleep (K.engine k) (Time.ms 10);
               check_status "destroy" Ok_done (K.destroy k pid e1))));
    Alcotest.test_case "send on destroyed link fails" `Quick (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               check_status "destroy" Ok_done (K.destroy k pid e0);
               check_status "send fails" E_destroyed (K.send k pid e0 (payload 1)))
             (fun k pid e1 ->
               Engine.sleep (K.engine k) (Time.ms 10);
               check_status "other side too" E_destroyed
                 (K.receive k pid e1 ~max_len:10))));
    Alcotest.test_case "process termination destroys its links" `Quick
      (fun () ->
        ignore
          (two_procs
             (fun _k _pid _e0 -> () (* A returns at once: links destroyed *))
             (fun k pid e1 ->
               Engine.sleep (K.engine k) (Time.ms 20);
               check_status "destroyed" E_destroyed
                 (K.receive k pid e1 ~max_len:10))));
    Alcotest.test_case "destroy returns in-transit enclosure to sender"
      `Quick (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               let enc, _ = Option.get (K.make_link k pid) in
               ignore (K.send k pid e0 ~enclosure:enc (payload 1));
               (* Peer never receives; destroy the carrying link. *)
               Engine.sleep (K.engine k) (Time.ms 5);
               check_status "destroy" Ok_done (K.destroy k pid e0);
               let c = K.wait k pid in
               check_status "send aborted" E_destroyed c.c_status;
               checkb "enclosure back" true (c.c_enclosure = Some enc);
               checkb "owned again" true (K.owner_of k enc = Some pid))
             (fun k _pid _e1 ->
               (* B lingers: its death would destroy the link first. *)
               Engine.sleep (K.engine k) (Time.ms 100))));
    Alcotest.test_case "full duplex: both directions at once" `Quick (fun () ->
        let a_got = ref 0 and b_got = ref 0 in
        ignore
          (two_procs
             (fun k pid e0 ->
               ignore (K.send k pid e0 (payload 3));
               ignore (K.receive k pid e0 ~max_len:10);
               let c1 = K.wait k pid in
               let c2 = K.wait k pid in
               List.iter
                 (fun (c : completion) ->
                   if c.c_dir = Received then a_got := c.c_length)
                 [ c1; c2 ])
             (fun k pid e1 ->
               ignore (K.send k pid e1 (payload 7));
               ignore (K.receive k pid e1 ~max_len:10);
               let c1 = K.wait k pid in
               let c2 = K.wait k pid in
               List.iter
                 (fun (c : completion) ->
                   if c.c_dir = Received then b_got := c.c_length)
                 [ c1; c2 ]));
        checki "a got b's bytes" 7 !a_got;
        checki "b got a's bytes" 3 !b_got);
    Alcotest.test_case "messages on one link are FIFO" `Quick (fun () ->
        let order = ref [] in
        ignore
          (two_procs
             (fun k pid e0 ->
               for i = 1 to 5 do
                 ignore (K.send k pid e0 (Bytes.make i 'x'));
                 ignore (K.wait k pid)
               done)
             (fun k pid e1 ->
               for _ = 1 to 5 do
                 ignore (K.receive k pid e1 ~max_len:10);
                 let c = K.wait k pid in
                 order := c.c_length :: !order
               done));
        Alcotest.check
          Alcotest.(list int)
          "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order));
    Alcotest.test_case "kernel calls charge CPU time" `Quick (fun () ->
        let e = Engine.create () in
        let k = K.create e ~nodes:2 () in
        let elapsed = ref Time.zero in
        ignore
          (K.spawn_process k ~node:0 ~name:"p" (fun pid ->
               let t0 = Engine.now e in
               ignore (K.make_link k pid);
               elapsed := Time.sub (Engine.now e) t0));
        Engine.run e;
        checkb "charged" true Time.(!elapsed > Time.zero));
    Alcotest.test_case "remote transfer is slower than the call" `Quick
      (fun () ->
        let duration = ref Time.zero in
        ignore
          (two_procs
             (fun k pid e0 ->
               let t0 = Engine.now (K.engine k) in
               ignore (K.send k pid e0 (payload 0));
               ignore (K.wait k pid);
               duration := Time.sub (Engine.now (K.engine k)) t0)
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:10);
               ignore (K.wait k pid)));
        (* One-way message ~26ms under the calibrated model. *)
        checkb "at least 20ms" true Time.(!duration >= Time.ms 20);
        checkb "under 40ms" true Time.(!duration <= Time.ms 40));
  ]

let edge_tests =
  [
    Alcotest.test_case "poll is a non-blocking wait" `Quick (fun () ->
        ignore
          (two_procs
             (fun k pid e0 ->
               checkb "nothing yet" true (K.poll k pid = None);
               ignore (K.send k pid e0 (payload 1));
               ignore (K.wait k pid);
               checkb "drained" true (K.poll k pid = None))
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:10);
               ignore (K.wait k pid))));
    Alcotest.test_case "wait returns completions in delivery order" `Quick
      (fun () ->
        let dirs = ref [] in
        ignore
          (two_procs
             (fun k pid e0 ->
               (* Post both directions; peer answers both. *)
               ignore (K.send k pid e0 (payload 2));
               ignore (K.receive k pid e0 ~max_len:10);
               let c1 = K.wait k pid in
               let c2 = K.wait k pid in
               dirs := [ c1.c_dir; c2.c_dir ])
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:10);
               ignore (K.wait k pid);
               ignore (K.send k pid e1 (payload 3));
               ignore (K.wait k pid)));
        (* Our send is received first (peer has receive posted), then
           the peer's reply arrives. *)
        checkb "sent then received" true (!dirs = [ Sent; Received ]));
    Alcotest.test_case "transfer_end refuses busy or destroyed ends" `Quick
      (fun () ->
        let e = Engine.create () in
        let k = K.create e ~nodes:2 () in
        ignore
          (K.spawn_process k ~node:0 ~name:"p" (fun pid ->
               let e0, _ = Option.get (K.make_link k pid) in
               ignore (K.receive k pid e0 ~max_len:8);
               checkb "busy refused" true
                 (match K.transfer_end k e0 ~to_:pid with
                 | _ -> false
                 | exception Invalid_argument _ -> true);
               ignore (K.cancel k pid e0 Received);
               ignore (K.destroy k pid e0);
               checkb "destroyed refused" true
                 (match K.transfer_end k e0 ~to_:pid with
                 | _ -> false
                 | exception Invalid_argument _ -> true)));
        Engine.run e);
    Alcotest.test_case "two links between one pair are independent" `Quick
      (fun () ->
        let e = Engine.create () in
        let k = K.create e ~nodes:2 () in
        let got = ref [] in
        let ends = Sync.Ivar.create e in
        let pa =
          K.spawn_process k ~node:0 ~name:"A" (fun pid ->
              let (a0, _), (b0, _) = Sync.Ivar.read ends in
              ignore (K.send k pid a0 (Bytes.of_string "on-a"));
              ignore (K.send k pid b0 (Bytes.of_string "on-b"));
              ignore (K.wait k pid);
              ignore (K.wait k pid))
        in
        ignore
          (K.spawn_process k ~node:1 ~name:"B" (fun pid ->
               let (_, a1), (_, b1) = Sync.Ivar.read ends in
               ignore (K.receive k pid b1 ~max_len:10);
               let c = K.wait k pid in
               got := Bytes.to_string c.c_data :: !got;
               ignore (K.receive k pid a1 ~max_len:10);
               let c = K.wait k pid in
               got := Bytes.to_string c.c_data :: !got));
        ignore
          (Engine.spawn e ~name:"driver" (fun () ->
               let la = Option.get (K.make_link k pa) in
               let lb = Option.get (K.make_link k pa) in
               K.transfer_end k (snd la) ~to_:(pa + 1);
               K.transfer_end k (snd lb) ~to_:(pa + 1);
               Sync.Ivar.fill ends (la, lb)));
        Engine.run e;
        (* B chose to take b first although a was sent first: per-link
           queues are independent. *)
        Alcotest.check
          Alcotest.(list string)
          "order by receive choice" [ "on-b"; "on-a" ]
          (List.rev !got));
    Alcotest.test_case "zero-length messages are legal" `Quick (fun () ->
        let len = ref (-1) in
        ignore
          (two_procs
             (fun k pid e0 ->
               ignore (K.send k pid e0 Bytes.empty);
               ignore (K.wait k pid))
             (fun k pid e1 ->
               ignore (K.receive k pid e1 ~max_len:10);
               let c = K.wait k pid in
               len := c.c_length));
        checki "empty" 0 !len);
  ]

let () =
  Alcotest.run "charlotte_kernel"
    [ ("kernel", tests); ("edges", edge_tests) ]
