(* Calibration tests: every latency number the paper reports must come
   out of the simulation within a tolerance band.  These are the same
   measurements the bench harness prints; here they gate the test suite
   so a regression in any cost model or protocol path fails loudly. *)

let checkb = Alcotest.check Alcotest.bool

let within ~pct ~paper measured =
  Float.abs ((measured -. paper) /. paper) *. 100. <= pct

let check_band name ~pct ~paper measured =
  checkb
    (Printf.sprintf "%s: measured %.2f vs paper %.1f (±%.0f%%)" name measured
       paper pct)
    true
    (within ~pct ~paper measured)

let lynx_mean (module W : Harness.Backend_world.WORLD) payload =
  Harness.Rpc_bench.mean_ms (Harness.Rpc_bench.run (module W) ~payload ())

let tests =
  [
    Alcotest.test_case "§3.3 charlotte LYNX: 57 ms at 0 bytes" `Slow (fun () ->
        check_band "charlotte lynx 0B" ~pct:5. ~paper:57.
          (lynx_mean Harness.Backend_world.charlotte 0));
    Alcotest.test_case "§3.3 charlotte LYNX: 65 ms at 1000 bytes" `Slow
      (fun () ->
        check_band "charlotte lynx 1000B" ~pct:5. ~paper:65.
          (lynx_mean Harness.Backend_world.charlotte 1000));
    Alcotest.test_case "§3.3 charlotte raw kernel: 55 ms at 0 bytes" `Slow
      (fun () ->
        check_band "charlotte raw 0B" ~pct:5. ~paper:55.
          (Sim.Time.to_ms (Harness.Rpc_bench.raw_charlotte ~payload:0 ())));
    Alcotest.test_case "§3.3 charlotte raw kernel: 60 ms at 1000 bytes" `Slow
      (fun () ->
        check_band "charlotte raw 1000B" ~pct:5. ~paper:60.
          (Sim.Time.to_ms (Harness.Rpc_bench.raw_charlotte ~payload:1000 ())));
    Alcotest.test_case "§4.3 soda is ~3x faster than charlotte (small)" `Slow
      (fun () ->
        let c = Sim.Time.to_ms (Harness.Rpc_bench.raw_charlotte ~payload:0 ()) in
        let s = Sim.Time.to_ms (Harness.Rpc_bench.raw_soda ~payload:0 ()) in
        check_band "ratio" ~pct:10. ~paper:3.0 (c /. s));
    Alcotest.test_case "§4.3 fn2: crossover between 1K and 2K bytes" `Slow
      (fun () ->
        (* Find the payload where charlotte becomes cheaper than soda. *)
        let rec search lo hi =
          if hi - lo <= 128 then (lo, hi)
          else begin
            let mid = (lo + hi) / 2 in
            let c = lynx_mean Harness.Backend_world.charlotte mid in
            let s = lynx_mean Harness.Backend_world.soda mid in
            if s < c then search mid hi else search lo mid
          end
        in
        let lo, hi = search 512 3072 in
        checkb
          (Printf.sprintf "crossover in (%d, %d) within [1000, 2000]" lo hi)
          true
          (lo >= 1000 - 128 && hi <= 2000 + 128));
    Alcotest.test_case "§5.3 chrysalis LYNX: 2.4 ms at 0 bytes" `Slow
      (fun () ->
        check_band "chrysalis 0B" ~pct:5. ~paper:2.4
          (lynx_mean Harness.Backend_world.chrysalis 0));
    Alcotest.test_case "§5.3 chrysalis LYNX: 4.6 ms at 1000 bytes" `Slow
      (fun () ->
        check_band "chrysalis 1000B" ~pct:5. ~paper:4.6
          (lynx_mean Harness.Backend_world.chrysalis 1000));
    Alcotest.test_case "§5.3 chrysalis beats charlotte by >10x" `Slow
      (fun () ->
        let c = lynx_mean Harness.Backend_world.charlotte 0 in
        let b = lynx_mean Harness.Backend_world.chrysalis 0 in
        checkb
          (Printf.sprintf "ratio %.1f > 10" (c /. b))
          true
          (c /. b > 10.));
    Alcotest.test_case "X1: chrysalis pipelines, charlotte serializes" `Slow
      (fun () ->
        let tp b k =
          Harness.Rpc_bench.throughput ~coroutines:k b ~payload:0 ()
        in
        let c1 = tp Harness.Backend_world.chrysalis 1 in
        let c4 = tp Harness.Backend_world.chrysalis 4 in
        checkb
          (Printf.sprintf "chrysalis gains from concurrency (%.0f -> %.0f)" c1
             c4)
          true (c4 > c1 *. 2.);
        let h1 = tp Harness.Backend_world.charlotte 1 in
        let h4 = tp Harness.Backend_world.charlotte 4 in
        checkb
          (Printf.sprintf "charlotte stays serialized (%.1f -> %.1f)" h1 h4)
          true
          (h4 < h1 *. 1.5));
    Alcotest.test_case "latency measurements are deterministic" `Slow
      (fun () ->
        let a = lynx_mean Harness.Backend_world.charlotte 0 in
        let b = lynx_mean Harness.Backend_world.charlotte 0 in
        Alcotest.check (Alcotest.float 0.0001) "same" a b);
  ]

let () = Alcotest.run "latency" [ ("calibration", tests) ]
