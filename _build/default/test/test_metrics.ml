(* Tests for the metrics library: source-size accounting and report
   helpers. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let with_temp_dir f =
  let dir = Filename.temp_file "metrics_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm path =
        if Sys.is_directory path then begin
          Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
      in
      rm dir)
    (fun () -> f dir)

let write_file dir name contents =
  let oc = open_out (Filename.concat dir name) in
  output_string oc contents;
  close_out oc

let source_tests =
  [
    Alcotest.test_case "counts code and comment lines" `Quick (fun () ->
        with_temp_dir (fun dir ->
            write_file dir "a.ml"
              "(* a comment *)\nlet x = 1\n\nlet y = 2 (* trailing *)\n";
            let c = Metrics.Source_size.count_dir dir in
            checki "files" 1 c.Metrics.Source_size.files;
            checki "total" 4 c.Metrics.Source_size.total_lines;
            (* Two code lines; the blank line counts as neither. *)
            checki "code" 2 c.Metrics.Source_size.code_lines));
    Alcotest.test_case "multi-line comments counted as comments" `Quick
      (fun () ->
        with_temp_dir (fun dir ->
            write_file dir "b.ml" "(* line one\n   line two\n   line three *)\nlet z = 3\n";
            let c = Metrics.Source_size.count_dir dir in
            checki "code" 1 c.Metrics.Source_size.code_lines;
            checki "comments" 3 c.Metrics.Source_size.comment_lines));
    Alcotest.test_case "non-OCaml files ignored" `Quick (fun () ->
        with_temp_dir (fun dir ->
            write_file dir "c.ml" "let a = 1\n";
            write_file dir "README.md" "lots\nof\nlines\n";
            let c = Metrics.Source_size.count_dir dir in
            checki "files" 1 c.Metrics.Source_size.files));
    Alcotest.test_case "recurses into subdirectories" `Quick (fun () ->
        with_temp_dir (fun dir ->
            Unix.mkdir (Filename.concat dir "sub") 0o755;
            write_file dir "top.ml" "let a = 1\n";
            write_file (Filename.concat dir "sub") "deep.ml" "let b = 2\n";
            let c = Metrics.Source_size.count_dir dir in
            checki "files" 2 c.Metrics.Source_size.files));
    Alcotest.test_case "missing directory is zero" `Quick (fun () ->
        let c = Metrics.Source_size.count_dir "/nonexistent/path/xyz" in
        checki "files" 0 c.Metrics.Source_size.files);
    Alcotest.test_case "backend_sizes finds this repository" `Quick (fun () ->
        match Metrics.Source_size.backend_sizes () with
        | None -> Alcotest.fail "repo root not found"
        | Some sizes ->
          checki "four libraries" 4 (List.length sizes);
          List.iter
            (fun (name, c) ->
              checkb
                (Printf.sprintf "%s has code" name)
                true
                (c.Metrics.Source_size.code_lines > 50))
            sizes;
          (* The paper's relative claim: the Charlotte runtime is the
             largest of the three backends. *)
          let get n = (List.assoc n sizes).Metrics.Source_size.code_lines in
          checkb "charlotte is biggest backend" true
            (get "lynx_charlotte" > get "lynx_soda"
            && get "lynx_charlotte" > get "lynx_chrysalis"));
  ]

let report_tests =
  [
    Alcotest.test_case "within tolerance" `Quick (fun () ->
        checkb "inside" true (Metrics.Report.within ~pct:10. ~paper:100. ~measured:105.);
        checkb "outside" false
          (Metrics.Report.within ~pct:10. ~paper:100. ~measured:120.);
        checkb "zero paper zero measured" true
          (Metrics.Report.within ~pct:10. ~paper:0. ~measured:0.));
    Alcotest.test_case "vs_paper formats deviation" `Quick (fun () ->
        let s = Metrics.Report.vs_paper ~paper:50. ~measured:55. in
        checkb "has +10%" true
          (String.length s > 0
          &&
          let rec contains i =
            i + 3 <= String.length s
            && (String.sub s i 3 = "+10" || contains (i + 1))
          in
          contains 0));
    Alcotest.test_case "ms and ratio format" `Quick (fun () ->
        Alcotest.check Alcotest.string "ms" "57.24 ms" (Metrics.Report.ms 57.239);
        Alcotest.check Alcotest.string "ratio" "3.02x" (Metrics.Report.ratio 3.021));
  ]

let () =
  Alcotest.run "metrics"
    [ ("source_size", source_tests); ("report", report_tests) ]
