(* The paper's qualitative scenarios (figures 1 and 2, §3.2.1, §3.2.2)
   with per-backend assertions about the protocol traffic each kernel
   needs — the quantified form of the paper's §6 discussion. *)

module S = Harness.Scenarios

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let on_all name speed f =
  List.map
    (fun (module W : Harness.Backend_world.WORLD) ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name W.name) speed (fun () ->
          f (module W : Harness.Backend_world.WORLD)))
    Harness.Backend_world.all

let fig1_tests =
  on_all "figure 1: simultaneous move succeeds" `Quick (fun (module W) ->
      let o = S.simultaneous_move (module W) in
      checkb o.S.o_detail true o.S.o_ok)
  @ [
      Alcotest.test_case "figure 1: charlotte pays the kernel move protocol"
        `Quick (fun () ->
          let o = S.simultaneous_move Harness.Backend_world.charlotte in
          checkb "ok" true o.S.o_ok;
          (* Two ends moved: the kernel's three-party agreement runs twice. *)
          checki "move protocol messages" 6
            (S.counter o "charlotte.move_protocol_msgs"));
      Alcotest.test_case "figure 1: soda moves by hint updates" `Quick
        (fun () ->
          let o = S.simultaneous_move Harness.Backend_world.soda in
          checkb "ok" true o.S.o_ok;
          checki "ends adopted" 2 (S.counter o "lynx_soda.ends_adopted"));
      Alcotest.test_case "figure 1: chrysalis moves by remapping" `Quick
        (fun () ->
          let o = S.simultaneous_move Harness.Backend_world.chrysalis in
          checkb "ok" true o.S.o_ok;
          checki "ends adopted" 2 (S.counter o "lynx_chrysalis.ends_adopted"));
    ]

(* Figure 2: Charlotte needs 2 kernel messages for k <= 1 enclosures and
   k + 2 for k >= 2 (request, goahead, k-1 enc packets, reply); SODA and
   Chrysalis costs do not grow with k at all. *)
let fig2_tests =
  List.map
    (fun k ->
      Alcotest.test_case
        (Printf.sprintf "figure 2: charlotte message count, k=%d" k)
        `Quick
        (fun () ->
          let o =
            S.enclosure_protocol ~n_encl:k Harness.Backend_world.charlotte
          in
          checkb "ok" true o.S.o_ok;
          let expected = if k <= 1 then 2 else k + 2 in
          checki "kernel msgs" expected (S.counter o "charlotte.kernel_msgs")))
    [ 0; 1; 2; 3; 5 ]
  @ List.concat_map
      (fun k ->
        [
          Alcotest.test_case
            (Printf.sprintf "figure 2: soda cost independent of k=%d" k)
            `Quick
            (fun () ->
              let base =
                S.enclosure_protocol ~n_encl:0 Harness.Backend_world.soda
              in
              let o = S.enclosure_protocol ~n_encl:k Harness.Backend_world.soda in
              checkb "ok" true o.S.o_ok;
              checki "same data puts as k=0"
                (S.counter base "lynx_soda.data_puts")
                (S.counter o "lynx_soda.data_puts"));
          Alcotest.test_case
            (Printf.sprintf "figure 2: chrysalis constant cost, k=%d" k)
            `Quick
            (fun () ->
              let o =
                S.enclosure_protocol ~n_encl:k Harness.Backend_world.chrysalis
              in
              checkb "ok" true o.S.o_ok;
              checki "slot writes" 2 (S.counter o "lynx_chrysalis.msgs_written"));
        ])
      [ 3; 5 ]

let unwanted_tests =
  [
    Alcotest.test_case "§3.2.1 cross request: charlotte forbids and allows"
      `Quick (fun () ->
        let o = S.cross_request Harness.Backend_world.charlotte in
        checkb o.S.o_detail true o.S.o_ok;
        checkb "unwanted received" true
          (S.counter o "lynx_charlotte.unwanted_received" >= 1);
        checkb "forbid sent" true
          (S.counter o "lynx_charlotte.pkt_sent.forbid" >= 1);
        checkb "allow sent" true
          (S.counter o "lynx_charlotte.pkt_sent.allow" >= 1));
    Alcotest.test_case "§3.2.1 open/close race: charlotte retries" `Quick
      (fun () ->
        let o = S.open_close_race Harness.Backend_world.charlotte in
        checkb o.S.o_detail true o.S.o_ok;
        checkb "retry sent" true
          (S.counter o "lynx_charlotte.pkt_sent.retry" >= 1);
        checkb "failed cancel observed" true
          (S.counter o "lynx_charlotte.cancel_failed" >= 1));
  ]
  @ on_all "§3.2.1 cross request completes everywhere" `Quick
      (fun (module W) ->
        let o = S.cross_request (module W) in
        checkb o.S.o_detail true o.S.o_ok;
        if W.name <> "charlotte" then
          checki "no bounces (lesson two)" 0
            (S.counter o "lynx_charlotte.unwanted_received"))
  @ on_all "§3.2.1 open/close race completes everywhere" `Quick
      (fun (module W) ->
        let o = S.open_close_race (module W) in
        checkb o.S.o_detail true o.S.o_ok)

let lost_enclosure_tests =
  [
    Alcotest.test_case "§3.2.2 charlotte loses the enclosure" `Quick (fun () ->
        let o = S.lost_enclosure Harness.Backend_world.charlotte in
        checkb o.S.o_detail true o.S.o_ok;
        (* The documented deviation: the end is gone for good. *)
        checkb "far end died" true (contains o.S.o_detail "far_end_died=true");
        checkb "not recovered" true (contains o.S.o_detail "recovered=false"));
    Alcotest.test_case "§3.2.2 soda recovers the enclosure" `Quick (fun () ->
        let o = S.lost_enclosure Harness.Backend_world.soda in
        checkb o.S.o_detail true o.S.o_ok;
        checkb "recovered" true (contains o.S.o_detail "recovered=true"));
    Alcotest.test_case "§3.2.2 chrysalis recovers the enclosure" `Quick
      (fun () ->
        let o = S.lost_enclosure Harness.Backend_world.chrysalis in
        checkb o.S.o_detail true o.S.o_ok;
        checkb "recovered" true (contains o.S.o_detail "recovered=true"));
  ]

let bounced_tests =
  on_all "unwanted enclosure survives the bounce" `Quick (fun (module W) ->
      let o = S.bounced_enclosure (module W) in
      checkb o.S.o_detail true o.S.o_ok)
  @ [
      Alcotest.test_case "charlotte actually bounced it" `Quick (fun () ->
          let o = S.bounced_enclosure Harness.Backend_world.charlotte in
          checkb "ok" true o.S.o_ok;
          checkb "unwanted received" true
            (S.counter o "lynx_charlotte.unwanted_received" >= 1);
          checkb "a bounce carried the enclosure back" true
            (S.counter o "lynx_charlotte.pkt_sent.forbid"
             + S.counter o "lynx_charlotte.pkt_sent.retry"
            >= 1));
    ]

let ablation_tests =
  [
    Alcotest.test_case "reply acks cost +50% messages (§3.2.2)" `Quick
      (fun () ->
        let msgs b =
          let r = Harness.Rpc_bench.run b ~payload:0 () in
          try List.assoc "charlotte.kernel_msgs" r.Harness.Rpc_bench.r_counters
          with Not_found -> 0
        in
        let plain = msgs Harness.Backend_world.charlotte in
        let acks = msgs Harness.Backend_world.charlotte_acks in
        checki "+50%" (plain * 3 / 2) acks);
    Alcotest.test_case "reply acks slow every RPC down" `Quick (fun () ->
        let mean b =
          Harness.Rpc_bench.mean_ms (Harness.Rpc_bench.run b ~payload:0 ())
        in
        checkb "slower" true
          (mean Harness.Backend_world.charlotte_acks
          > mean Harness.Backend_world.charlotte));
    Alcotest.test_case "reply-ack variant still passes figure 1" `Quick
      (fun () ->
        let o = S.simultaneous_move Harness.Backend_world.charlotte_acks in
        checkb o.S.o_detail true o.S.o_ok);
    Alcotest.test_case "hint-based kernel passes figure 1 without move msgs"
      `Quick (fun () ->
        let o = S.simultaneous_move Harness.Backend_world.charlotte_hints in
        checkb o.S.o_detail true o.S.o_ok;
        checki "no move protocol" 0 (S.counter o "charlotte.move_protocol_msgs"));
    Alcotest.test_case "hint repair works with a reliable broadcast" `Quick
      (fun () ->
        let o = S.soda_hint_repair ~broadcast_loss:0.0 () in
        checkb o.S.o_detail true o.S.o_ok;
        checki "no freeze needed" 0 (S.counter o "lynx_soda.freeze_searches"));
    Alcotest.test_case
      "hint repair falls back to the freeze search under total loss" `Quick
      (fun () ->
        let o = S.soda_hint_repair ~broadcast_loss:1.0 () in
        checkb o.S.o_detail true o.S.o_ok;
        checkb "freeze search ran" true
          (S.counter o "lynx_soda.freeze_searches" >= 1));
  ]

let pair_pressure_tests =
  [
    Alcotest.test_case "§4.2.1: signal budget avoids the pair-limit deadlock"
      `Quick (fun () ->
        let o = S.soda_pair_pressure ~budget:true () in
        checkb o.S.o_detail true o.S.o_ok);
    Alcotest.test_case "§4.2.1: without the budget, data puts starve" `Quick
      (fun () ->
        let o = S.soda_pair_pressure ~budget:false () in
        checkb "deadlocked as the paper warns" true (not o.S.o_ok);
        checkb "pair limit was the cause" true
          (S.counter o "soda.pair_limit_hits" > 0));
  ]

(* Direct protocol-coverage checks that the named scenarios do not
   reach. *)
let protocol_coverage_tests =
  [
    Alcotest.test_case
      "charlotte: multi-enclosure replies skip the goahead (figure 2)" `Quick
      (fun () ->
        (* A reply carrying 3 ends: rep_first + 2 enc packets and no
           goahead, since "a reply is always wanted". *)
        let (module W : Harness.Backend_world.WORLD) =
          Harness.Backend_world.charlotte
        in
        let open Sim in
        let module P = Lynx.Process in
        let e = Engine.create () in
        let w = W.create e ~nodes:4 in
        let sts = W.stats w in
        let got = ref 0 in
        let lc = Sync.Ivar.create e in
        let server =
          W.spawn w ~daemon:true ~node:0 ~name:"server" (fun p ->
              let inc = P.await_request p () in
              let ends =
                List.init 3 (fun _ ->
                    let near, _far = P.new_link p in
                    Lynx.Value.Link near)
              in
              inc.P.in_reply ends;
              P.sleep p (Time.ms 300))
        in
        let client =
          W.spawn w ~daemon:true ~node:1 ~name:"client" (fun p ->
              let lnk = Sync.Ivar.read lc in
              match P.call p lnk ~op:"gimme" [] with
              | vs -> got := List.length (Lynx.Value.links_of_list vs)
              | exception _ -> ())
        in
        ignore
          (Engine.spawn e ~name:"driver" (fun () ->
               let c, _ = W.link_between w client server in
               Sync.Ivar.fill lc c));
        Engine.run e;
        checki "three ends arrived" 3 !got;
        checki "no goahead for replies" 0
          (Sim.Stats.get sts "lynx_charlotte.pkt_sent.goahead");
        checki "two enc packets" 2
          (Sim.Stats.get sts "lynx_charlotte.pkt_sent.enc"));
  ]
  @ on_all "destroying a moved end notifies its new peer" `Quick
      (fun (module W) ->
        (* A gives its end of link L to B; later A's original peer C
           destroys its fixed end; B (the new owner) must hear. *)
        let open Sim in
        let module P = Lynx.Process in
        let e = Engine.create () in
        let w = W.create e ~nodes:6 in
        let notified = ref false in
        let l_ab = Sync.Ivar.create e and l_ac = Sync.Ivar.create e in
        let a =
          W.spawn w ~daemon:true ~node:0 ~name:"A" (fun p ->
              let ab = Sync.Ivar.read l_ab and ac = Sync.Ivar.read l_ac in
              ignore (P.call p ab ~op:"take" [ Lynx.Value.Link ac ]);
              P.sleep p (Time.ms 500))
        in
        let b =
          W.spawn w ~daemon:true ~node:1 ~name:"B" (fun p ->
              let inc = P.await_request p () in
              match inc.P.in_args with
              | [ Lynx.Value.Link moved ] -> (
                inc.P.in_reply [];
                (* Wait for traffic on the moved end; C will destroy. *)
                match P.await_request p ~links:[ moved ] () with
                | _ -> ()
                | exception Lynx.Excn.Link_destroyed -> notified := true)
              | _ -> inc.P.in_reply [])
        in
        let c =
          W.spawn w ~daemon:true ~node:2 ~name:"C" (fun p ->
              let rec wait () =
                match P.live_links p with
                | l :: _ -> l
                | [] ->
                  P.sleep p (Time.ms 1);
                  wait ()
              in
              let fixed = wait () in
              P.sleep p (Time.ms 250);
              P.destroy_link p fixed;
              P.sleep p (Time.ms 700))
        in
        ignore
          (Engine.spawn e ~name:"driver" (fun () ->
               let ab, _ = W.link_between w a b in
               let ac, _ = W.link_between w a c in
               Sync.Ivar.fill l_ab ab;
               Sync.Ivar.fill l_ac ac));
        Engine.run e;
        checkb "new owner notified of destruction" true !notified)
  @ on_all "peer death during a multi-enclosure transfer fails the send"
      `Quick (fun (module W) ->
        (* The receiver dies mid-protocol (between goahead and the enc
           packets under Charlotte); the sender's call must fail, not
           hang. *)
        let open Sim in
        let module P = Lynx.Process in
        let e = Engine.create () in
        let w = W.create e ~nodes:4 in
        let failed = ref false and completed = ref false in
        let lc = Sync.Ivar.create e in
        let victim =
          W.spawn w ~daemon:true ~node:0 ~name:"victim" (fun p ->
              (* Open the queue so the transfer begins, then die before
                 it can complete. *)
              List.iter (P.open_queue p) (P.live_links p);
              P.on_new_link p (fun l -> P.open_queue p l);
              P.sleep p (Time.ms 45))
        in
        let sender =
          W.spawn w ~daemon:true ~node:1 ~name:"sender" (fun p ->
              let lnk = Sync.Ivar.read lc in
              let ends =
                List.init 4 (fun _ ->
                    let near, _ = P.new_link p in
                    Lynx.Value.Link near)
              in
              P.sleep p (Time.ms 10);
              match P.call p lnk ~op:"take" ends with
              | _ -> completed := true
              | exception
                  ( Lynx.Excn.Link_destroyed | Lynx.Excn.Process_terminated
                  | Lynx.Excn.Remote_error _ ) ->
                failed := true)
        in
        ignore
          (Engine.spawn e ~name:"driver" (fun () ->
               let c, _ = W.link_between w sender victim in
               Sync.Ivar.fill lc c));
        Engine.run e;
        checkb "failed or completed, never hung" true (!failed || !completed))

let determinism_tests =
  on_all "scenarios are deterministic per seed" `Quick (fun (module W) ->
      let a = S.simultaneous_move ~seed:7 (module W) in
      let b = S.simultaneous_move ~seed:7 (module W) in
      checkb "same outcome" true (a.S.o_ok = b.S.o_ok);
      checki "same duration" (Sim.Time.to_ns a.S.o_duration)
        (Sim.Time.to_ns b.S.o_duration);
      checkb "same counters" true (a.S.o_counters = b.S.o_counters))

let () =
  Alcotest.run "scenarios"
    [
      ("figure1", fig1_tests);
      ("figure2", fig2_tests);
      ("unwanted", unwanted_tests);
      ("lost_enclosure", lost_enclosure_tests);
      ("bounced_enclosure", bounced_tests);
      ("pair_pressure", pair_pressure_tests);
      ("protocol_coverage", protocol_coverage_tests);
      ("ablations", ablation_tests);
      ("determinism", determinism_tests);
    ]
