(** Shared types for the Chrysalis interface on the BBN Butterfly
    (paper §5.1). *)

type pid = int
type node = int

(** Address-space-independent name of a memory object.  A process must
    map an object before touching its contents. *)
type obj_name = int

(** Name of an event block.  Anyone may post; only the owner may wait. *)
type event_name = int

(** Name of a dual queue. *)
type dualq_name = int

type fault =
  | Unmapped_object  (** access to an object not mapped by the caller *)
  | Bad_name  (** unknown object/event/queue name *)
  | Not_owner  (** waiting on an event block one does not own *)
  | Bounds  (** out-of-range memory access *)

exception Memory_fault of fault

let fault_to_string = function
  | Unmapped_object -> "unmapped-object"
  | Bad_name -> "bad-name"
  | Not_owner -> "not-owner"
  | Bounds -> "bounds"
