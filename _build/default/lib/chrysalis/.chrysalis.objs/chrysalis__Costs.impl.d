lib/chrysalis/costs.ml: Sim
