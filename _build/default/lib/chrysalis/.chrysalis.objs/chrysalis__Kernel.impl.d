lib/chrysalis/kernel.ml: Bytes Char Costs Engine Hashtbl List Netmodel Option Printf Queue Sim Stats Types
