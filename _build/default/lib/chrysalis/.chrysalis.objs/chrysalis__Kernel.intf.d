lib/chrysalis/kernel.mli: Costs Sim Types
