lib/chrysalis/types.ml:
