(** Simulator for the Chrysalis operating system on the BBN Butterfly
    (paper §5.1).

    Chrysalis is not a message-passing kernel: it manages shared-memory
    abstractions — {e memory objects} mapped into process address spaces,
    {e event blocks} (binary semaphores carrying a 32-bit datum, waitable
    only by their owner), and {e dual queues} (bounded buffers that hold
    either data or, once drained, the event-block names of waiting
    consumers).  Whatever message screening a language needs is built
    above these primitives by the run-time package.

    Memory objects carry reference counts; an object marked for deletion
    is reclaimed when its count reaches zero.  Process termination runs
    registered cleanup handlers (Chrysalis lets even erroneous processes
    clean up their links) and unmaps everything the process still has
    mapped. *)

open Types

type t

exception Process_exit

val create :
  Sim.Engine.t -> ?costs:Costs.t -> ?stats:Sim.Stats.t -> processors:int -> unit -> t

val engine : t -> Sim.Engine.t
val stats : t -> Sim.Stats.t
val costs : t -> Costs.t
val processors : t -> int

(** {1 Processes} *)

val spawn_process :
  t -> ?daemon:bool -> node:node -> name:string -> (pid -> unit) -> pid
val process_alive : t -> pid -> bool
val process_node : t -> pid -> node
val terminate : t -> pid -> unit

val at_termination : t -> pid -> (unit -> unit) -> unit
(** Registers a cleanup handler, run (most recent first) when the process
    terminates — normally, by exception, or via [terminate]. *)

(** {1 Memory objects} *)

val make_object : t -> pid -> size:int -> obj_name
(** Creates and maps an object (refcount 1). *)

val map_object : t -> pid -> obj_name -> unit
val unmap_object : t -> pid -> obj_name -> unit
val mark_for_deletion : t -> pid -> obj_name -> unit
(** The object is reclaimed once its reference count reaches zero. *)

val refcount : t -> obj_name -> int
val object_exists : t -> obj_name -> bool
val mapped : t -> pid -> obj_name -> bool

val write_bytes : t -> pid -> obj_name -> off:int -> bytes -> unit
(** Copies into the object, charging local or switch cost by locality of
    the object's home node relative to the caller. *)

val read_bytes : t -> pid -> obj_name -> off:int -> len:int -> bytes

val atomic_or16 : t -> pid -> obj_name -> off:int -> int -> int
(** Atomically ORs a 16-bit word; returns the {e previous} value.
    Microcoded, cheap (paper: "atomic changes to flags extremely
    inexpensive"). *)

val atomic_and16 : t -> pid -> obj_name -> off:int -> int -> int
val read16 : t -> pid -> obj_name -> off:int -> int

val write32_nonatomic : t -> pid -> obj_name -> off:int -> int -> unit
(** Writes a 32-bit value as two separate 16-bit halves — the reader can
    observe a torn value (paper §5.2: dual-queue names are updated
    non-atomically; the protocol must tolerate a stale read). *)

val read32 : t -> pid -> obj_name -> off:int -> int

(** {1 Event blocks} *)

val make_event : t -> pid -> event_name
val event_post : t -> pid -> event_name -> int -> unit
(** Any process that knows the name may post.  Posting an already-posted
    event overwrites its datum (binary-semaphore semantics). *)

val event_wait : t -> pid -> event_name -> int
(** Owner only; blocks until posted, consumes the event, returns the
    datum. *)

(** {1 Dual queues} *)

val make_dualq : t -> pid -> capacity:int -> dualq_name

val dq_enqueue : t -> pid -> dualq_name -> int -> unit
(** If consumers are waiting (the queue holds event names), posts the
    oldest waiter's event with the datum instead of queueing it.
    Raises [Memory_fault Bounds] if the data queue is full. *)

val dq_dequeue : t -> pid -> dualq_name -> ev:event_name -> int option
(** [Some datum] if data was available.  Otherwise enqueues [ev]'s name
    on the queue and returns [None]; the caller should then
    [event_wait ev] for the datum. *)

val dq_length : t -> dualq_name -> int
