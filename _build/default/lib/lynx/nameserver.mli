(** A long-lived name server — the kind of system service LYNX was
    designed to talk to (paper §2: communication "between user programs
    and long-lived system servers", for processes "compiled and loaded
    at disparate times").

    A provider registers a service under a string name; a client looks
    the name up and receives a {e private link} to the provider.  The
    private link is manufactured on demand: the name server relays a
    [clone] request to the provider, which creates a fresh link and
    encloses one end in its reply; the server forwards that end to the
    client — so every lookup moves a link end across two hops, the
    mechanism of figure 1 put to everyday use.

    The name server itself is an ordinary LYNX process: run {!body} as a
    process body and hand each participant a link to it (e.g. with
    [World.link_between]). *)

val body : Process.t -> unit
(** The server loop: serves [register], [lookup] and [list] on every
    link it ever owns.  Runs until the process terminates. *)

val register : Process.t -> ns:Link.t -> name:string -> unit
(** Claims [name] on the server reached via [ns].  The calling process
    must keep serving [clone] on [ns] — {!serve_clones} installs the
    standard handler.  Raises [Excn.Remote_error] if the name is taken. *)

val serve_clones : Process.t -> ns:Link.t -> on_client:(Link.t -> unit) -> unit
(** Installs the provider-side [clone] handler on the registration link:
    each clone manufactures a fresh link, passes the kept end to
    [on_client] (typically: spawn a thread serving it), and returns the
    other end to the name server. *)

val lookup : Process.t -> ns:Link.t -> name:string -> Link.t option
(** Resolves [name] to a fresh private link to its provider; [None] if
    unregistered or if the provider has died. *)

val list_names : Process.t -> ns:Link.t -> string list
(** All currently registered names, sorted. *)
