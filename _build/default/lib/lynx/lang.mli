(** Typed remote operations — a thin, statically-typed veneer over
    {!Process.call}/{!Process.serve}.

    LYNX checks message types dynamically because the two sides of a
    link are compiled at disparate times; this module gives the OCaml
    programmer back static types on each side while keeping the dynamic
    check on the wire.  A mismatch between the two sides' [defop]
    declarations is caught at run time exactly as in LYNX, surfacing as
    [Excn.Remote_error] or [Excn.Type_error]. *)

type 'a arg
(** A wire codec for one OCaml type. *)

val unit : unit arg
val bool : bool arg
val int : int arg
val str : string arg

val link : Link.t arg
(** The link end moves to the receiver, as always. *)

val pair : 'a arg -> 'b arg -> ('a * 'b) arg
val triple : 'a arg -> 'b arg -> 'c arg -> ('a * 'b * 'c) arg
val list : 'a arg -> 'a list arg
val option : 'a arg -> 'a option arg

type ('req, 'resp) op
(** A named remote operation with typed request and response. *)

val defop : name:string -> req:'req arg -> resp:'resp arg -> ('req, 'resp) op

val name : (_, _) op -> string

val call : Process.t -> Link.t -> ('req, 'resp) op -> 'req -> 'resp
(** Typed remote call; blocks the calling thread until the reply. *)

val serve : Process.t -> Link.t -> ('req, 'resp) op -> ('req -> 'resp) -> unit
(** Registers a typed handler for the operation on this link end and
    opens its request queue. *)
