(** Runtime values carried by LYNX messages. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Link of Link.t
  | Pair of t * t
  | List of t list

let rec check (ty : Ty.t) v =
  match (ty, v) with
  | Ty.Unit, Unit | Ty.Bool, Bool _ | Ty.Int, Int _ | Ty.Str, Str _ -> true
  | Ty.Link, Link _ -> true
  | Ty.Pair (ta, tb), Pair (a, b) -> check ta a && check tb b
  | Ty.List te, List vs -> List.for_all (check te) vs
  | (Ty.Unit | Ty.Bool | Ty.Int | Ty.Str | Ty.Link | Ty.Pair _ | Ty.List _), _
    -> false

let check_list tys vs =
  List.length tys = List.length vs && List.for_all2 check tys vs

(** Marshalled size in bytes: one tag byte per node plus the payload.
    This drives the simulated transfer costs, so it must match what
    {!Codec} produces. *)
let rec size_bytes = function
  | Unit | Bool _ -> 1
  | Int _ -> 9
  | Str s -> 5 + String.length s
  | Link _ -> 5  (* a placeholder index; the end itself travels out of band *)
  | Pair (a, b) -> 1 + size_bytes a + size_bytes b
  | List vs -> List.fold_left (fun acc v -> acc + size_bytes v) 5 vs

let size_list vs = List.fold_left (fun acc v -> acc + size_bytes v) 0 vs

(** All link ends contained in the value, left to right. *)
let rec links acc = function
  | Unit | Bool _ | Int _ | Str _ -> acc
  | Link l -> l :: acc
  | Pair (a, b) -> links (links acc a) b
  | List vs -> List.fold_left links acc vs

let links_of_list vs = List.rev (List.fold_left links [] vs)

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.fprintf ppf "%S" s
  | Link l -> Link.pp ppf l
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      vs

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Link x, Link y -> x.Link.lid = y.Link.lid
  | Pair (a1, a2), Pair (b1, b2) -> equal a1 b1 && equal a2 b2
  | List xs, List ys -> (
    try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | (Unit | Bool _ | Int _ | Str _ | Link _ | Pair _ | List _), _ -> false
