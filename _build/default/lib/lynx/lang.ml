type 'a arg = {
  a_ty : Ty.t;
  a_enc : 'a -> Value.t;
  a_dec : Value.t -> 'a;  (* raises Excn.Type_error *)
}

let fail what = raise (Excn.Type_error ("decode: expected " ^ what))

let unit =
  {
    a_ty = Ty.Unit;
    a_enc = (fun () -> Value.Unit);
    a_dec = (function Value.Unit -> () | _ -> fail "unit");
  }

let bool =
  {
    a_ty = Ty.Bool;
    a_enc = (fun b -> Value.Bool b);
    a_dec = (function Value.Bool b -> b | _ -> fail "bool");
  }

let int =
  {
    a_ty = Ty.Int;
    a_enc = (fun i -> Value.Int i);
    a_dec = (function Value.Int i -> i | _ -> fail "int");
  }

let str =
  {
    a_ty = Ty.Str;
    a_enc = (fun s -> Value.Str s);
    a_dec = (function Value.Str s -> s | _ -> fail "str");
  }

let link =
  {
    a_ty = Ty.Link;
    a_enc = (fun l -> Value.Link l);
    a_dec = (function Value.Link l -> l | _ -> fail "link");
  }

let pair a b =
  {
    a_ty = Ty.Pair (a.a_ty, b.a_ty);
    a_enc = (fun (x, y) -> Value.Pair (a.a_enc x, b.a_enc y));
    a_dec =
      (function
      | Value.Pair (x, y) -> (a.a_dec x, b.a_dec y)
      | _ -> fail "pair");
  }

let triple a b c =
  let p = pair a (pair b c) in
  {
    a_ty = p.a_ty;
    a_enc = (fun (x, y, z) -> p.a_enc (x, (y, z)));
    a_dec =
      (fun v ->
        let x, (y, z) = p.a_dec v in
        (x, y, z));
  }

let list a =
  {
    a_ty = Ty.List a.a_ty;
    a_enc = (fun xs -> Value.List (List.map a.a_enc xs));
    a_dec =
      (function Value.List xs -> List.map a.a_dec xs | _ -> fail "list");
  }

(* Options ride as lists of zero or one element (LYNX's type system has
   no option; a bounded list is the idiomatic encoding). *)
let option a =
  let l = list a in
  {
    a_ty = l.a_ty;
    a_enc = (function None -> l.a_enc [] | Some x -> l.a_enc [ x ]);
    a_dec =
      (fun v ->
        match l.a_dec v with
        | [] -> None
        | [ x ] -> Some x
        | _ -> fail "option");
  }

type ('req, 'resp) op = { o_name : string; o_req : 'req arg; o_resp : 'resp arg }

let defop ~name ~req ~resp = { o_name = name; o_req = req; o_resp = resp }
let name o = o.o_name

let call p lnk o req =
  match
    Process.call p lnk ~op:o.o_name
      ~expect:[ o.o_resp.a_ty ]
      [ o.o_req.a_enc req ]
  with
  | [ v ] -> o.o_resp.a_dec v
  | _ -> raise (Excn.Type_error ("reply arity of " ^ o.o_name))

let serve p lnk o fn =
  Process.serve p lnk ~op:o.o_name
    ~sg:(Ty.signature [ o.o_req.a_ty ] ~results:[ o.o_resp.a_ty ])
    (function
      | [ v ] -> [ o.o_resp.a_enc (fn (o.o_req.a_dec v)) ]
      | _ -> raise (Excn.Type_error ("request arity of " ^ o.o_name)))
