(** Message type descriptions, checked at run time when a request or
    reply is received (LYNX performs dynamic type checking across links,
    since the two sides are compiled at disparate times). *)

type t =
  | Unit
  | Bool
  | Int
  | Str
  | Link  (** a link end travels with the message *)
  | Pair of t * t
  | List of t

(** The argument and result types of a remote operation. *)
type signature = { sg_args : t list; sg_results : t list }

let rec to_string = function
  | Unit -> "unit"
  | Bool -> "bool"
  | Int -> "int"
  | Str -> "str"
  | Link -> "link"
  | Pair (a, b) -> "(" ^ to_string a ^ " * " ^ to_string b ^ ")"
  | List e -> to_string e ^ " list"

let list_to_string tys = "[" ^ String.concat "; " (List.map to_string tys) ^ "]"

let signature ?(results = []) args = { sg_args = args; sg_results = results }
