(* Protocol: three public typed operations served by the name server,
   plus one ([clone]) that providers serve toward the name server. *)

let op_register = Lang.defop ~name:"ns.register" ~req:Lang.str ~resp:Lang.bool
let op_lookup =
  Lang.defop ~name:"ns.lookup" ~req:Lang.str ~resp:(Lang.option Lang.link)
let op_list = Lang.defop ~name:"ns.list" ~req:Lang.unit ~resp:(Lang.list Lang.str)
let op_clone = Lang.defop ~name:"ns.clone" ~req:Lang.unit ~resp:Lang.link

let body p =
  (* name -> the registration link leading to the provider. *)
  let table : (string, Link.t) Hashtbl.t = Hashtbl.create 16 in
  let install lnk =
    Process.serve p lnk ~op:(Lang.name op_register)
      ~sg:(Ty.signature [ Ty.Str ] ~results:[ Ty.Bool ])
      (function
        | [ Value.Str name ] ->
          if Hashtbl.mem table name then
            raise (Excn.Remote_error ("name taken: " ^ name))
          else begin
            Hashtbl.replace table name lnk;
            [ Value.Bool true ]
          end
        | _ -> assert false);
    Lang.serve p lnk op_lookup (fun name ->
        match Hashtbl.find_opt table name with
        | None -> None
        | Some provider -> (
          (* Relay a clone request to the provider; the fresh end it
             returns moves on to the client inside our reply. *)
          match Lang.call p provider op_clone () with
          | fresh -> Some fresh
          | exception (Excn.Link_destroyed | Excn.Invalid_link) ->
            (* The provider is gone; forget it. *)
            Hashtbl.remove table name;
            None));
    Lang.serve p lnk op_list (fun () ->
        List.sort String.compare
          (Hashtbl.fold (fun k _ acc -> k :: acc) table []))
  in
  List.iter install (Process.live_links p);
  (* Links adopted later (members joining) get the services too. *)
  Process.on_new_link p install;
  try Process.park p with Excn.Process_terminated -> ()

let register p ~ns ~name =
  match Lang.call p ns op_register name with
  | true -> ()
  | false -> raise (Excn.Remote_error ("register refused: " ^ name))

let serve_clones p ~ns ~on_client =
  Lang.serve p ns op_clone (fun () ->
      let keep, give = Process.new_link p in
      on_client keep;
      give)

let lookup p ~ns ~name = Lang.call p ns op_lookup name

let list_names p ~ns = Lang.call p ns op_list ()
