(** Cost model for the language run-time package itself.

    The paper separates kernel cost from run-time package cost: under
    Charlotte a LYNX remote operation takes 57 ms where the equivalent
    raw kernel calls take 55 ms, and 65 vs 60 ms with 1000-byte
    parameters (§3.3).  The difference is the run-time package
    "gathering and scattering parameters, blocking and unblocking
    coroutines, establishing default exception handlers, enforcing flow
    control, performing type checking, updating tables for enclosed
    links, making sure links are valid".

    Per message we charge [send_fixed] on the sending side and
    [recv_fixed] on the receiving side, plus [per_byte] on each side for
    gather/scatter.  A simple RPC is two messages, so:

    - VAX (Charlotte, and SODA's host class): the package adds ~2 ms to
      a remote operation — per-message bookkeeping plus the extra
      receive-post it keeps on the critical path — and
      2 x 2 x 0.75 = 3 us/byte of parameters in both directions,
      reproducing 57 and 65 ms.
    - 68000 (Butterfly): the Chrysalis backend's copies through the link
      object are themselves the gather/scatter, so [per_byte] is zero
      here; the fixed per-message cost (coroutine management, tables,
      type checks on a 10 MHz 68000, before the "code tuning now under
      development") is tuned so a simple operation lands at 2.4 ms
      (§5.3). *)

type t = {
  send_fixed : Sim.Time.t;
  recv_fixed : Sim.Time.t;
  per_byte : Sim.Time.t;
  dispatch : Sim.Time.t;  (** block-point bookkeeping per dispatch *)
}

let vax =
  {
    send_fixed = Sim.Time.of_ms_float 0.10;
    recv_fixed = Sim.Time.of_ms_float 0.10;
    per_byte = Sim.Time.of_us_float 0.75;
    dispatch = Sim.Time.of_us_float 50.;
  }

let m68000 =
  {
    send_fixed = Sim.Time.of_us_float 450.;
    recv_fixed = Sim.Time.of_us_float 450.;
    per_byte = Sim.Time.zero;
    dispatch = Sim.Time.of_us_float 50.;
  }

(** The Butterfly runtime after the "code tuning and protocol
    optimizations now under development" of §5.3, which the paper
    expects "to improve both figures by 30 to 40%": the combined code
    tuning and protocol optimizations cut the package's fixed
    per-message costs nearly in half. *)
let m68000_tuned =
  {
    m68000 with
    send_fixed = Sim.Time.mul_float m68000.send_fixed 0.55;
    recv_fixed = Sim.Time.mul_float m68000.recv_fixed 0.55;
    dispatch = Sim.Time.mul_float m68000.dispatch 0.55;
  }

let message_cpu t ~bytes ~side =
  let fixed = match side with `Send -> t.send_fixed | `Recv -> t.recv_fixed in
  Sim.Time.add fixed (Sim.Time.scale t.per_byte bytes)
