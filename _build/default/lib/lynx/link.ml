(** A process's view of one end of a LYNX link.

    The handle is local to one process: when an end moves to another
    process, the receiver gets a {e fresh} handle and the sender's handle
    becomes invalid ([Moved]).  All dispatch bookkeeping lives in
    {!Process}; this record carries only the per-end state that the
    language semantics talk about. *)

type state =
  | Live
  | Moving  (** enclosed in an in-flight message *)
  | Moved  (** successfully moved to another process *)
  | Lost  (** enclosed in a failed message and unrecoverable (§3.2.2) *)
  | Dead  (** the link was destroyed *)

type t = {
  lid : int;  (** backend handle id, process-local *)
  mutable l_state : state;
  mutable unreceived_sends : int;
      (** messages we sent on this end not yet received by the peer;
          while nonzero the end may not move *)
  mutable owed_replies : int;
      (** requests received on this end whose reply we have not sent;
          while nonzero the end may not move *)
  mutable request_queue_open : bool;
  mutable replies_expected : int;  (** reply queue open iff > 0 *)
}

let make lid =
  {
    lid;
    l_state = Live;
    unreceived_sends = 0;
    owed_replies = 0;
    request_queue_open = false;
    replies_expected = 0;
  }

let state_to_string = function
  | Live -> "live"
  | Moving -> "moving"
  | Moved -> "moved"
  | Lost -> "lost"
  | Dead -> "dead"

let pp ppf l =
  Format.fprintf ppf "link#%d[%s]" l.lid (state_to_string l.l_state)

let is_usable l = l.l_state = Live

(** Why this end may not be enclosed in a message right now, if any. *)
let move_obstacle l =
  match l.l_state with
  | Moving | Moved -> Some "end is already moving"
  | Lost -> Some "end was lost"
  | Dead -> Some "link is destroyed"
  | Live ->
    if l.unreceived_sends > 0 then Some "unreceived messages outstanding"
    else if l.owed_replies > 0 then Some "a reply is owed on this end"
    else None
