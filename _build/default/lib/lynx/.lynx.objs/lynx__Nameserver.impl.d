lib/lynx/nameserver.ml: Excn Hashtbl Lang Link List Process String Ty Value
