lib/lynx/backend.ml: Sim
