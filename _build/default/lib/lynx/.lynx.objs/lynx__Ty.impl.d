lib/lynx/ty.ml: List String
