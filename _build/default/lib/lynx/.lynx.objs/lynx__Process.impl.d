lib/lynx/process.ml: Array Backend Bytes Codec Costs Engine Excn Fun Hashtbl Link List Option Printf Sim Stats Sync Time Ty Value
