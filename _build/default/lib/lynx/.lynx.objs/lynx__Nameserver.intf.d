lib/lynx/nameserver.mli: Link Process
