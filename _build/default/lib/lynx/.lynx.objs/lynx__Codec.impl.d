lib/lynx/codec.ml: Array Buffer Bytes Char Link List Printf String Value
