lib/lynx/excn.ml: Printexc
