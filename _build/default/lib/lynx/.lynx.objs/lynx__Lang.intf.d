lib/lynx/lang.mli: Link Process
