lib/lynx/value.ml: Format Link List String Ty
