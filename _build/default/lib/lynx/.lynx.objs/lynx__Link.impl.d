lib/lynx/link.ml: Format
