lib/lynx/process.mli: Backend Costs Link Sim Ty Value
