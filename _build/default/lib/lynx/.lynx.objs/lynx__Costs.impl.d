lib/lynx/costs.ml: Sim
