lib/lynx/lang.ml: Excn List Process Ty Value
