(** Marshalling of LYNX values into wire payloads.

    Link ends never travel inside the payload: each [Link] node is
    replaced by the index of the corresponding enclosure, and the ends
    themselves move out of band through the backend's enclosure
    mechanism.  [encode] therefore returns both the payload bytes and the
    ordered list of enclosed ends; [decode] reverses this given the fresh
    handles the backend produced on receipt. *)

exception Malformed of string

let tag_unit = 0
let tag_false = 1
let tag_true = 2
let tag_int = 3
let tag_str = 4
let tag_link = 5
let tag_pair = 6
let tag_list = 7

let encode (vs : Value.t list) : bytes * Link.t list =
  let buf = Buffer.create 64 in
  let encl = ref [] in
  let n_encl = ref 0 in
  let add_u32 n =
    Buffer.add_char buf (Char.chr (n land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))
  in
  let rec enc (v : Value.t) =
    match v with
    | Unit -> Buffer.add_char buf (Char.chr tag_unit)
    | Bool false -> Buffer.add_char buf (Char.chr tag_false)
    | Bool true -> Buffer.add_char buf (Char.chr tag_true)
    | Int i ->
      Buffer.add_char buf (Char.chr tag_int);
      for shift = 0 to 7 do
        Buffer.add_char buf (Char.chr ((i lsr (shift * 8)) land 0xff))
      done
    | Str s ->
      Buffer.add_char buf (Char.chr tag_str);
      add_u32 (String.length s);
      Buffer.add_string buf s
    | Link l ->
      Buffer.add_char buf (Char.chr tag_link);
      add_u32 !n_encl;
      incr n_encl;
      encl := l :: !encl
    | Pair (a, b) ->
      Buffer.add_char buf (Char.chr tag_pair);
      enc a;
      enc b
    | List items ->
      Buffer.add_char buf (Char.chr tag_list);
      add_u32 (List.length items);
      List.iter enc items
  in
  List.iter enc vs;
  (Buffer.to_bytes buf, List.rev !encl)

let decode (payload : bytes) ~(enclosures : Link.t array) : Value.t list =
  let pos = ref 0 in
  let len = Bytes.length payload in
  let byte () =
    if !pos >= len then raise (Malformed "truncated payload");
    let c = Char.code (Bytes.get payload !pos) in
    incr pos;
    c
  in
  let u32 () =
    let a = byte () in
    let b = byte () in
    let c = byte () in
    let d = byte () in
    a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)
  in
  let rec dec () : Value.t =
    let tag = byte () in
    if tag = tag_unit then Unit
    else if tag = tag_false then Bool false
    else if tag = tag_true then Bool true
    else if tag = tag_int then begin
      let v = ref 0 in
      for shift = 0 to 7 do
        v := !v lor (byte () lsl (shift * 8))
      done;
      Int !v
    end
    else if tag = tag_str then begin
      let n = u32 () in
      if !pos + n > len then raise (Malformed "truncated string");
      let s = Bytes.sub_string payload !pos n in
      pos := !pos + n;
      Str s
    end
    else if tag = tag_link then begin
      let idx = u32 () in
      if idx >= Array.length enclosures then
        raise (Malformed "enclosure index out of range");
      Link enclosures.(idx)
    end
    else if tag = tag_pair then
      let a = dec () in
      let b = dec () in
      Pair (a, b)
    else if tag = tag_list then begin
      let n = u32 () in
      let rec items k acc =
        if k = 0 then List.rev acc
        else
          let v = dec () in
          items (k - 1) (v :: acc)
      in
      List (items n [])
    end
    else raise (Malformed (Printf.sprintf "bad tag %d" tag))
  in
  let rec all acc = if !pos >= len then List.rev acc else all (dec () :: acc) in
  all []
