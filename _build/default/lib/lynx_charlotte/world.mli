(** LYNX processes on a simulated Crystal/Charlotte machine. *)

type t
(** A machine: one Charlotte kernel plus shared stats and cost models. *)

type member
(** A spawned LYNX process; its handles fill once the process has
    initialised inside its fiber. *)

val create :
  ?costs:Lynx.Costs.t ->
  ?kernel_costs:Charlotte.Costs.t ->
  ?reply_acks:bool ->
  ?stats:Sim.Stats.t ->
  Sim.Engine.t ->
  nodes:int ->
  t
(** [create engine ~nodes] builds a Crystal machine with [nodes]
    stations.  [kernel_costs] overrides the Charlotte cost model (used
    by the hint-based-move ablation); [reply_acks] enables the §3.2.2
    reply-acknowledgment ablation. *)

val kernel : t -> Charlotte.Kernel.t
val stats : t -> Sim.Stats.t
val engine : t -> Sim.Engine.t

val spawn :
  t ->
  ?daemon:bool ->
  node:int ->
  name:string ->
  (Lynx.Process.t -> unit) ->
  member
(** Starts a LYNX process on [node]; the body runs as its main thread
    and the process terminates (destroying its links) when it returns. *)

val link_between : t -> member -> member -> Lynx.Link.t * Lynx.Link.t
(** Creates a link with one end in each process — the bootstrap a parent
    process would normally provide.  Must be called from a fiber; blocks
    until both processes are initialised. *)

val process : member -> Lynx.Process.t
(** The member's process handle (blocks until initialised). *)
