(** Wire format of the LYNX-over-Charlotte protocol (paper §3.2).

    A LYNX message becomes one or more Charlotte messages ("packets").
    Besides the two obvious packet types — a request and a reply — the
    implementation needs five more to cope with Charlotte's interface:

    - [Enc]: a Charlotte message can enclose at most one link end, so a
      LYNX message moving k >= 2 ends is split into a first packet plus
      k-1 empty [Enc] packets (figure 2);
    - [Goahead]: sent by the receiver of a multi-enclosure {e request}
      after the first packet, so the sender knows the request is wanted
      before committing the remaining ends;
    - [Retry]: negative acknowledgment returning an unwanted request
      (and its enclosure); the sender retransmits immediately — the
      retransmission is delayed by the kernel because the bouncing
      process no longer has a Receive posted;
    - [Forbid]/[Allow]: used instead of [Retry] when the bouncing
      process must keep a Receive posted (it expects a reply), so a bare
      retransmission would bounce forever. *)

type header =
  | Req_first of data_header
  | Rep_first of data_header
  | Enc of { e_seq : int; e_kind : Lynx.Backend.kind; e_index : int }
  | Goahead of { g_seq : int }
  | Retry of { r_seq : int }
  | Forbid of { f_seq : int }
  | Allow
  | Ack of { k_seq : int }
      (** top-level reply acknowledgment — only used by the optional
          reply-ack variant the paper deems too expensive (§3.2.2: it
          would increase message traffic by 50%%) *)

and data_header = {
  d_seq : int;
  d_corr : int;  (** runtime correlation id: replies echo their request's *)
  d_op : string;
  d_exn : string option;
  d_n_encl : int;  (** total ends moved by the LYNX message *)
  d_payload : bytes;
}

let kind_code = function Lynx.Backend.Request -> 0 | Lynx.Backend.Reply -> 1
let kind_of_code = function 0 -> Lynx.Backend.Request | _ -> Lynx.Backend.Reply

let label = function
  | Req_first _ -> "request"
  | Rep_first _ -> "reply"
  | Enc _ -> "enc"
  | Goahead _ -> "goahead"
  | Retry _ -> "retry"
  | Forbid _ -> "forbid"
  | Allow -> "allow"
  | Ack _ -> "ack"

let encode (h : header) : bytes =
  let buf = Buffer.create 64 in
  let u8 n = Buffer.add_char buf (Char.chr (n land 0xff)) in
  let u16 n =
    u8 n;
    u8 (n lsr 8)
  in
  let u32 n =
    u16 n;
    u16 (n lsr 16)
  in
  let str s =
    u16 (String.length s);
    Buffer.add_string buf s
  in
  let data code (d : data_header) =
    u8 code;
    u32 d.d_seq;
    u32 d.d_corr;
    str d.d_op;
    (match d.d_exn with
    | None -> u8 0
    | Some e ->
      u8 1;
      str e);
    u8 d.d_n_encl;
    u32 (Bytes.length d.d_payload);
    Buffer.add_bytes buf d.d_payload
  in
  (match h with
  | Req_first d -> data 1 d
  | Rep_first d -> data 2 d
  | Enc { e_seq; e_kind; e_index } ->
    u8 3;
    u32 e_seq;
    u8 (kind_code e_kind);
    u8 e_index
  | Goahead { g_seq } ->
    u8 4;
    u32 g_seq
  | Retry { r_seq } ->
    u8 5;
    u32 r_seq
  | Forbid { f_seq } ->
    u8 6;
    u32 f_seq
  | Allow -> u8 7
  | Ack { k_seq } ->
    u8 8;
    u32 k_seq);
  Buffer.to_bytes buf

exception Malformed

let decode (b : bytes) : header =
  let pos = ref 0 in
  let u8 () =
    if !pos >= Bytes.length b then raise Malformed;
    let v = Char.code (Bytes.get b !pos) in
    incr pos;
    v
  in
  let u16 () =
    let lo = u8 () in
    let hi = u8 () in
    lo lor (hi lsl 8)
  in
  let u32 () =
    let lo = u16 () in
    let hi = u16 () in
    lo lor (hi lsl 16)
  in
  let str () =
    let n = u16 () in
    if !pos + n > Bytes.length b then raise Malformed;
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    s
  in
  let data () =
    let d_seq = u32 () in
    let d_corr = u32 () in
    let d_op = str () in
    let d_exn = if u8 () = 1 then Some (str ()) else None in
    let d_n_encl = u8 () in
    let len = u32 () in
    if !pos + len > Bytes.length b then raise Malformed;
    let d_payload = Bytes.sub b !pos len in
    { d_seq; d_corr; d_op; d_exn; d_n_encl; d_payload }
  in
  match u8 () with
  | 1 -> Req_first (data ())
  | 2 -> Rep_first (data ())
  | 3 ->
    let e_seq = u32 () in
    let e_kind = kind_of_code (u8 ()) in
    let e_index = u8 () in
    Enc { e_seq; e_kind; e_index }
  | 4 -> Goahead { g_seq = u32 () }
  | 5 -> Retry { r_seq = u32 () }
  | 6 -> Forbid { f_seq = u32 () }
  | 7 -> Allow
  | 8 -> Ack { k_seq = u32 () }
  | _ -> raise Malformed
