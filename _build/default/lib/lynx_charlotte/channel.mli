(** LYNX channel layer for Charlotte — the run-time package machinery of
    paper §3.2.

    Every LYNX link is one Charlotte link; LYNX request/reply queues are
    multiplexed onto the single receive activity Charlotte allows per
    end.  The module implements the full protocol of §3.2.1–3.2.2:

    - unwanted requests are returned with [Retry], or with
      [Forbid]/[Allow] when a receive must stay posted for an expected
      reply;
    - a LYNX message moving k >= 2 ends becomes a first packet, a
      [Goahead] from the receiver, and k-1 [Enc] packets (figure 2);
    - ends are quiesced (posted receives cancelled) before they may be
      enclosed, and returned enclosures are re-owned on bounces.

    The optional [reply_acks] mode adds the top-level reply
    acknowledgments the paper rejected as too expensive: +50% message
    traffic, in exchange for the reply-abort exception of §3.2.2. *)

type t
(** Per-process channel state. *)

val make :
  ?reply_acks:bool ->
  Charlotte.Kernel.t ->
  Charlotte.Types.pid ->
  stats:Sim.Stats.t ->
  t * Lynx.Backend.ops
(** Creates the channel layer for one process and starts its completion
    pump fiber.  The returned {!Lynx.Backend.ops} plug into
    {!Lynx.Process.make}. *)

val adopt_end : t -> Charlotte.Types.link_end -> int
(** Registers a kernel end this process already owns (bootstrap links
    from {!World.link_between}); returns the backend handle. *)
