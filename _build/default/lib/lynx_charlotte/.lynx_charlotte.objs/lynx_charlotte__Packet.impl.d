lib/lynx_charlotte/packet.ml: Buffer Bytes Char Lynx String
