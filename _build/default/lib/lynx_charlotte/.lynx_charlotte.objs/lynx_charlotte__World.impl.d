lib/lynx_charlotte/world.ml: Channel Charlotte Fun Lynx Sim
