lib/lynx_charlotte/channel.ml: Array Charlotte Engine Hashtbl List Lynx Option Packet Printf Queue Sim Stats Sync
