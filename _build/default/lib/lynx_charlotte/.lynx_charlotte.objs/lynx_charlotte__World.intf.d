lib/lynx_charlotte/world.mli: Charlotte Lynx Sim
