lib/lynx_charlotte/channel.mli: Charlotte Lynx Sim
