(** Convenience harness: LYNX processes on a simulated Crystal/Charlotte
    machine. *)

type t = {
  kernel : Charlotte.Kernel.t;
  sts : Sim.Stats.t;
  costs : Lynx.Costs.t;
  reply_acks : bool;
      (** enable the §3.2.2 top-level reply acknowledgments (an
          ablation: the paper rejected them as too expensive) *)
}

type member = {
  m_chan : Channel.t Sim.Sync.Ivar.t;
  m_process : Lynx.Process.t Sim.Sync.Ivar.t;
  m_pid : Charlotte.Types.pid Sim.Sync.Ivar.t;
}

let create ?(costs = Lynx.Costs.vax) ?kernel_costs ?(reply_acks = false) ?stats
    engine ~nodes =
  let sts = match stats with Some s -> s | None -> Sim.Stats.create () in
  {
    kernel = Charlotte.Kernel.create engine ?costs:kernel_costs ~stats:sts ~nodes ();
    sts;
    costs;
    reply_acks;
  }

let kernel t = t.kernel
let stats t = t.sts
let engine t = Charlotte.Kernel.engine t.kernel

let spawn t ?daemon ~node ~name body =
  let eng = engine t in
  let m =
    {
      m_chan = Sim.Sync.Ivar.create eng;
      m_process = Sim.Sync.Ivar.create eng;
      m_pid = Sim.Sync.Ivar.create eng;
    }
  in
  ignore
    (Charlotte.Kernel.spawn_process t.kernel ?daemon ~node ~name (fun pid ->
         let chan, ops =
           Channel.make ~reply_acks:t.reply_acks t.kernel pid ~stats:t.sts
         in
         let p = Lynx.Process.make eng ~name ~costs:t.costs ~stats:t.sts ops in
         Sim.Sync.Ivar.fill m.m_chan chan;
         Sim.Sync.Ivar.fill m.m_pid pid;
         Sim.Sync.Ivar.fill m.m_process p;
         Fun.protect ~finally:(fun () -> Lynx.Process.finish p) (fun () -> body p)));
  m

(** Creates a link with one end in each process — the bootstrap link a
    parent process would normally provide.  Call from a fiber. *)
let link_between t ma mb =
  let ca = Sim.Sync.Ivar.read ma.m_chan and cb = Sim.Sync.Ivar.read mb.m_chan in
  let pa = Sim.Sync.Ivar.read ma.m_process
  and pb = Sim.Sync.Ivar.read mb.m_process in
  let pid_a = Sim.Sync.Ivar.read ma.m_pid and pid_b = Sim.Sync.Ivar.read mb.m_pid in
  match Charlotte.Kernel.make_link t.kernel pid_a with
  | None -> invalid_arg "link_between: dead process"
  | Some (e0, e1) ->
    Charlotte.Kernel.transfer_end t.kernel e1 ~to_:pid_b;
    let ha = Channel.adopt_end ca e0 in
    let hb = Channel.adopt_end cb e1 in
    (Lynx.Process.adopt_link pa ha, Lynx.Process.adopt_link pb hb)

let process m = Sim.Sync.Ivar.read m.m_process
