(** Wire format of the LYNX-over-SODA protocol (paper §4.2).

    SODA's out-of-band data is tiny (~48 bits), so only the essentials
    travel out of band; everything else — operation name, enclosure
    descriptors, payload — goes in the message body, exactly the
    trade-off §4.2.1 discusses.

    Out-of-band tags:
    - requests: [Msg] (a LYNX request or reply put; carries the kind),
      [Sig] (a status signal watching for destruction/moves), [Freeze]
      (hint search, carries the sought end name), [Unfreeze].
    - accepts: [Ok_taken], [Destroyed], [Moved] (carries the new owner
      pid), [Hint] (freeze answer with a hint), [No_hint]. *)

type req_oob =
  | Msg of Lynx.Backend.kind
  | Sig
  | Freeze of int  (* sought end name *)
  | Unfreeze

type acc_oob =
  | Ok_taken
  | Destroyed
  | Moved of int  (* new owner pid *)
  | Hint of int  (* freeze answer: believed owner pid *)
  | No_hint

let u32_bytes n =
  Bytes.init 4 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let u32_of b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let encode_req_oob = function
  | Msg Lynx.Backend.Request -> Bytes.of_string "\001"
  | Msg Lynx.Backend.Reply -> Bytes.of_string "\002"
  | Sig -> Bytes.of_string "\003"
  | Freeze name -> Bytes.cat (Bytes.of_string "\004") (u32_bytes name)
  | Unfreeze -> Bytes.of_string "\005"

let decode_req_oob b =
  if Bytes.length b = 0 then None
  else
    match Char.code (Bytes.get b 0) with
    | 1 -> Some (Msg Lynx.Backend.Request)
    | 2 -> Some (Msg Lynx.Backend.Reply)
    | 3 -> Some Sig
    | 4 when Bytes.length b >= 5 -> Some (Freeze (u32_of b 1))
    | 5 -> Some Unfreeze
    | _ -> None

let encode_acc_oob = function
  | Ok_taken -> Bytes.of_string "\001"
  | Destroyed -> Bytes.of_string "\002"
  | Moved pid -> Bytes.cat (Bytes.of_string "\003") (u32_bytes pid)
  | Hint pid -> Bytes.cat (Bytes.of_string "\004") (u32_bytes pid)
  | No_hint -> Bytes.of_string "\005"

let decode_acc_oob b =
  if Bytes.length b = 0 then None
  else
    match Char.code (Bytes.get b 0) with
    | 1 -> Some Ok_taken
    | 2 -> Some Destroyed
    | 3 when Bytes.length b >= 5 -> Some (Moved (u32_of b 1))
    | 4 when Bytes.length b >= 5 -> Some (Hint (u32_of b 1))
    | 5 -> Some No_hint
    | _ -> None

(** Message body: operation, optional exception, enclosure descriptors,
    payload.  An enclosure descriptor names the moved end, the far end,
    and a location hint for the far end's owner. *)
type encl = { e_my_name : int; e_far_name : int; e_hint : int }

type body = {
  b_corr : int;
  b_op : string;
  b_exn : string option;
  b_encl : encl list;
  b_payload : bytes;
}

let encode_body (b : body) : bytes =
  let buf = Buffer.create (64 + Bytes.length b.b_payload) in
  let u16 n =
    Buffer.add_char buf (Char.chr (n land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff))
  in
  let u32 n =
    u16 (n land 0xffff);
    u16 ((n lsr 16) land 0xffff)
  in
  let str s =
    u16 (String.length s);
    Buffer.add_string buf s
  in
  u32 b.b_corr;
  str b.b_op;
  (match b.b_exn with
  | None -> u16 0xffff
  | Some e -> str e);
  u16 (List.length b.b_encl);
  List.iter
    (fun e ->
      u32 e.e_my_name;
      u32 e.e_far_name;
      u32 e.e_hint)
    b.b_encl;
  u32 (Bytes.length b.b_payload);
  Buffer.add_bytes buf b.b_payload;
  Buffer.to_bytes buf

exception Malformed

let decode_body (raw : bytes) : body =
  let pos = ref 0 in
  let u16 () =
    if !pos + 2 > Bytes.length raw then raise Malformed;
    let v =
      Char.code (Bytes.get raw !pos)
      lor (Char.code (Bytes.get raw (!pos + 1)) lsl 8)
    in
    pos := !pos + 2;
    v
  in
  let u32 () =
    let lo = u16 () in
    let hi = u16 () in
    lo lor (hi lsl 16)
  in
  let str n =
    if !pos + n > Bytes.length raw then raise Malformed;
    let s = Bytes.sub_string raw !pos n in
    pos := !pos + n;
    s
  in
  let b_corr = u32 () in
  let b_op = str (u16 ()) in
  let b_exn =
    let n = u16 () in
    if n = 0xffff then None else Some (str n)
  in
  let n_encl = u16 () in
  let rec encls k acc =
    if k = 0 then List.rev acc
    else begin
      let e_my_name = u32 () in
      let e_far_name = u32 () in
      let e_hint = u32 () in
      encls (k - 1) ({ e_my_name; e_far_name; e_hint } :: acc)
    end
  in
  let b_encl = encls n_encl [] in
  let len = u32 () in
  if !pos + len > Bytes.length raw then raise Malformed;
  let b_payload = Bytes.sub raw !pos len in
  { b_corr; b_op; b_exn; b_encl; b_payload }

(** Well-known freeze name for a process (paper §4.2: "every process
    advertises a freeze name").  SODA names are unique ints; we reserve
    a high range. *)
let freeze_name pid = 1_000_000 + pid
