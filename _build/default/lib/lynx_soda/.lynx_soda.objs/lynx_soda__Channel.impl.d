lib/lynx_soda/channel.ml: Array Bytes Engine Hashtbl List Lynx Option Printf Queue Sim Soda Stats Sync Time Wire
