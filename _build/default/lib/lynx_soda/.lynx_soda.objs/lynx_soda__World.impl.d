lib/lynx_soda/world.ml: Channel Fun Lynx Sim Soda
