lib/lynx_soda/channel.mli: Lynx Sim Soda
