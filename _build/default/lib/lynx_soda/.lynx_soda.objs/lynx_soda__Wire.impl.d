lib/lynx_soda/wire.ml: Buffer Bytes Char List Lynx String
