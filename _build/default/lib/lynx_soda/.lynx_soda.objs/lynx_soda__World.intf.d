lib/lynx_soda/world.mli: Lynx Sim Soda
