(** LYNX processes on a simulated SODA network. *)

type t
type member

val create :
  ?costs:Lynx.Costs.t ->
  ?kernel_costs:Soda.Costs.t ->
  ?signal_budget:bool ->
  ?stats:Sim.Stats.t ->
  Sim.Engine.t ->
  nodes:int ->
  t
(** [create engine ~nodes] builds a SODA network.  [kernel_costs]
    overrides the kernel cost model — notably [broadcast_loss], used by
    the hint-repair ablation.  SODA allows one process per node. *)

val kernel : t -> Soda.Kernel.t
val stats : t -> Sim.Stats.t
val engine : t -> Sim.Engine.t

val spawn :
  t ->
  ?daemon:bool ->
  node:int ->
  name:string ->
  (Lynx.Process.t -> unit) ->
  member

val link_between : t -> member -> member -> Lynx.Link.t * Lynx.Link.t
(** Bootstrap link with one end in each process; call from a fiber. *)

val process : member -> Lynx.Process.t
