(** LYNX channel layer for SODA — the design of paper §4.2.

    A link is a pair of unique names, one per end; the owner of an end
    advertises its name and keeps a {e hint} for the far end's location.
    Sends are SODA puts to the hinted process; receiving is
    deferred-accept, so no unwanted message is ever received (lesson
    two).  Moves carry name/hint descriptors inside the message; the old
    owner keeps the name advertised with a forwarding entry (the cache
    of §4.2) and answers later traffic with redirects.  Stale hints are
    repaired by redirects, [discover] broadcasts, and — as the absolute
    fallback — the freeze/unfreeze search. *)

type t
(** Per-process channel state. *)

val make :
  ?signal_budget:bool ->
  Soda.Kernel.t ->
  Soda.Types.pid ->
  stats:Sim.Stats.t ->
  t * Lynx.Backend.ops
(** Creates the channel layer for one process: registers its software
    interrupt handler, advertises its freeze name, and starts the pump
    fiber that performs the kernel calls interrupts may not.
    [signal_budget] (default true) reserves per-pair request slots for
    data puts; disabling it reproduces the §4.2.1 deadlock when many
    links connect one pair of processes. *)

val bootstrap_pair : t -> t -> int * int
(** Creates a link whose ends start in two different processes (for
    {!World.link_between}); returns the two backend handles. *)
