lib/lynx_chrysalis/layout.ml: Buffer Bytes Char List Lynx Option String
