lib/lynx_chrysalis/world.ml: Channel Chrysalis Fun Lynx Sim
