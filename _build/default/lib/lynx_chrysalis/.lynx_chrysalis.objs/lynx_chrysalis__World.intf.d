lib/lynx_chrysalis/world.mli: Chrysalis Lynx Sim
