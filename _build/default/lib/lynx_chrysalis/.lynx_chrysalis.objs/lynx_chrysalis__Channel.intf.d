lib/lynx_chrysalis/channel.mli: Chrysalis Lynx Sim
