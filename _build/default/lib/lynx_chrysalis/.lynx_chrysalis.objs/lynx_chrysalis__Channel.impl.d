lib/lynx_chrysalis/channel.ml: Array Bytes Char Chrysalis Engine Hashtbl Layout List Lynx Printf Queue Sim Stats Sync
