(** Layout of a LYNX link object in Butterfly shared memory (paper §5.2).

    A link is one Chrysalis memory object mapped by the two connected
    processes.  It contains buffer space for a single request and a
    single reply in each direction, a set of flag bits, and the names of
    the dual queues of the processes at each end.

    Byte layout:
    {v
    0   flags (16-bit word, atomic ops only)
    4   dual-queue name of the side-0 process (32-bit, updated
        NON-atomically when the end moves; readers tolerate staleness)
    8   dual-queue name of the side-1 process
    12  slot 0: request travelling 0 -> 1
    12+S   slot 1: reply   travelling 0 -> 1
    12+2S  slot 2: request travelling 1 -> 0
    12+3S  slot 3: reply   travelling 1 -> 0
    v}
    where S = [slot_size].  Each slot starts with the total encoded
    length (4 bytes) — so the receiver copies only what was written —
    followed by: payload length (4), op length (2), op bytes, exception
    length (2), exception bytes, has-exception (2), enclosure count (2),
    then [enclosure count] encoded end names (4 each), then the
    payload. *)

let flags_off = 0
let dq_name_off side = 4 + (4 * side)
let slot_size = 2048
let header_off = 12

(** Flag bit for a message present in a slot. *)
let present_bit slot = 1 lsl slot

(** Flag bit: the link has been destroyed. *)
let destroyed_bit = 1 lsl 8

(** Slot index for a message of [kind] sent by the process on [side]. *)
let slot ~side ~(kind : Lynx.Backend.kind) =
  (2 * side) + match kind with Lynx.Backend.Request -> 0 | Lynx.Backend.Reply -> 1

let kind_of_slot s =
  if s land 1 = 0 then Lynx.Backend.Request else Lynx.Backend.Reply

let side_of_slot s = s / 2
let slot_off s = header_off + (s * slot_size)
let object_size = header_off + (4 * slot_size)

(** Dual-queue notice encoding: [(object_name lsl 4) lor tag].  Tags 0-3:
    "slot N of your link changed"; tag 15: "destroyed flag set".  All
    notices are hints (§5.2): the receiver validates against the flags. *)
let notice_msg ~obj ~slot = (obj lsl 4) lor slot

let notice_destroy ~obj = (obj lsl 4) lor 15
let notice_obj n = n lsr 4
let notice_tag n = n land 15

(** Serialized slot header helpers.  [encode_slot] produces the bytes to
    write at the slot offset. *)
let encode_slot ~corr ~op ~exn_msg ~(enclosures : int list) ~(payload : bytes) =
  let buf = Buffer.create (64 + Bytes.length payload) in
  let add_u16 n =
    Buffer.add_char buf (Char.chr (n land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff))
  in
  let add_u32 n =
    add_u16 (n land 0xffff);
    add_u16 ((n lsr 16) land 0xffff)
  in
  add_u32 corr;
  add_u32 (Bytes.length payload);
  add_u16 (String.length op);
  Buffer.add_string buf op;
  let exn_s = Option.value exn_msg ~default:"" in
  add_u16 (String.length exn_s);
  Buffer.add_string buf exn_s;
  add_u16 (if exn_msg = None then 0 else 1);
  add_u16 (List.length enclosures);
  List.iter add_u32 enclosures;
  Buffer.add_bytes buf payload;
  let b = Buffer.to_bytes buf in
  if Bytes.length b > slot_size then
    invalid_arg "lynx_chrysalis: message exceeds link buffer";
  b

type decoded = {
  d_corr : int;
  d_op : string;
  d_exn : string option;
  d_enclosures : int list;  (** memory-object names of moved link ends *)
  d_payload : bytes;
}

let decode_slot (b : bytes) : decoded =
  let pos = ref 0 in
  let u16 () =
    let v =
      Char.code (Bytes.get b !pos) lor (Char.code (Bytes.get b (!pos + 1)) lsl 8)
    in
    pos := !pos + 2;
    v
  in
  let u32 () =
    let lo = u16 () in
    let hi = u16 () in
    lo lor (hi lsl 16)
  in
  let d_corr = u32 () in
  let payload_len = u32 () in
  let op_len = u16 () in
  let d_op = Bytes.sub_string b !pos op_len in
  pos := !pos + op_len;
  let exn_len = u16 () in
  let exn_s = Bytes.sub_string b !pos exn_len in
  pos := !pos + exn_len;
  let has_exn = u16 () in
  let n_encl = u16 () in
  let rec encls k acc =
    if k = 0 then List.rev acc
    else
      let v = u32 () in
      encls (k - 1) (v :: acc)
  in
  let d_enclosures = encls n_encl [] in
  let d_payload = Bytes.sub b !pos payload_len in
  {
    d_corr;
    d_op;
    d_exn = (if has_exn = 1 then Some exn_s else None);
    d_enclosures;
    d_payload;
  }

(** Bytes actually occupied by an encoded slot (for cost accounting). *)
let encoded_size ~op ~exn_msg ~n_enclosures ~payload_len =
  4 + 2 + String.length op + 2
  + String.length (Option.value exn_msg ~default:"")
  + 2 + 2 + (4 * n_enclosures) + payload_len
