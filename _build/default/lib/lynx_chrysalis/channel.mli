(** LYNX channel layer for Chrysalis — the design of paper §5.2.

    A link is one shared memory object holding four message slots
    (request/reply in each direction), a flag word, and the dual-queue
    names of the two owners.  Flag bits are the ground truth about
    message availability; dual-queue notices are hints validated against
    the flags.  Moving an end passes the object's name in a message; the
    recipient maps the object, rewrites its side's dual-queue name
    (non-atomically — tolerated by re-inspecting the flags afterwards),
    and self-posts notices for anything already present. *)

type t
(** Per-process channel state: one dual queue and one event block
    through which the process hears about messages sent and received. *)

val make :
  Chrysalis.Kernel.t ->
  Chrysalis.Types.pid ->
  stats:Sim.Stats.t ->
  t * Lynx.Backend.ops
(** Creates the channel layer for one process and starts its notice pump
    fiber.  Registers a termination cleanup with the kernel so links are
    destroyed even if the process faults. *)

val bootstrap_pair : t -> t -> int * int
(** Creates a link whose ends start in two different processes (for
    {!World.link_between}); returns the two backend handles. *)
