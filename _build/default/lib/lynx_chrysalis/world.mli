(** LYNX processes on a simulated BBN Butterfly. *)

type t
type member

val create :
  ?costs:Lynx.Costs.t ->
  ?stats:Sim.Stats.t ->
  Sim.Engine.t ->
  nodes:int ->
  t
(** [create engine ~nodes] builds a Butterfly with [nodes] processors. *)

val kernel : t -> Chrysalis.Kernel.t
val stats : t -> Sim.Stats.t
val engine : t -> Sim.Engine.t

val spawn :
  t ->
  ?daemon:bool ->
  node:int ->
  name:string ->
  (Lynx.Process.t -> unit) ->
  member

val link_between : t -> member -> member -> Lynx.Link.t * Lynx.Link.t
(** Bootstrap link with one end in each process; call from a fiber. *)

val process : member -> Lynx.Process.t
