lib/harness/scenarios.mli: Backend_world Sim
