lib/harness/rpc_bench.ml: Backend_world Bytes Charlotte Engine List Lynx Sim Soda Stats String Sync Time
