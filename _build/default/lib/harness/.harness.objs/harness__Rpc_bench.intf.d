lib/harness/rpc_bench.mli: Backend_world Sim
