lib/harness/scenarios.ml: Backend_world Engine List Lynx Lynx_soda Printf Sim Soda Stats Sync Time
