lib/harness/backend_world.ml: Charlotte List Lynx Lynx_charlotte Lynx_chrysalis Lynx_soda Printf Sim String
