(** Shared types for the Charlotte kernel interface (Artsy, Chang &
    Finkel; paper §3.1). *)

type pid = int
type node = int

(** A capability for one end of a kernel link.  Values are opaque handles;
    the kernel validates ownership on every call (the redundant checking
    the paper's end-to-end discussion calls out). *)
type link_end = { link_id : int; side : int (* 0 or 1 *) }

let peer_side e = { e with side = 1 - e.side }

let pp_end ppf e = Format.fprintf ppf "L%d.%c" e.link_id (if e.side = 0 then 'a' else 'b')

type direction = Sent | Received

let pp_direction ppf = function
  | Sent -> Format.pp_print_string ppf "sent"
  | Received -> Format.pp_print_string ppf "received"

(** Status codes returned by kernel calls and completions. *)
type status =
  | Ok_done
  | E_destroyed  (** link destroyed or peer process terminated *)
  | E_bad_end  (** caller does not own this end / end is in transit *)
  | E_busy  (** an activity in that direction is already outstanding *)
  | E_too_long  (** message exceeded the receive buffer *)
  | E_no_activity  (** cancel found nothing to cancel *)
  | E_enclosure_busy  (** enclosure has outstanding activities *)
  | E_enclosure_self  (** tried to enclose an end of the carrying link *)

let status_to_string = function
  | Ok_done -> "ok"
  | E_destroyed -> "destroyed"
  | E_bad_end -> "bad-end"
  | E_busy -> "busy"
  | E_too_long -> "too-long"
  | E_no_activity -> "no-activity"
  | E_enclosure_busy -> "enclosure-busy"
  | E_enclosure_self -> "enclosure-self"

let pp_status ppf s = Format.pp_print_string ppf (status_to_string s)

(** Activity completion descriptor, returned by [Wait] (paper §3.1). *)
type completion = {
  c_end : link_end;
  c_dir : direction;
  c_status : status;
  c_data : bytes;  (** received payload; empty for send completions *)
  c_length : int;
  c_enclosure : link_end option;
}
