(** Simulator for the Charlotte distributed operating system kernel
    (paper §3.1).

    Charlotte provides processes and duplex {e links}.  Communication is
    by {e activities}: a process starts a send or a receive on a link end
    it owns; the kernel matches a send on one end with a receive on the
    other, performs the transfer, and reports completion through [wait].
    At most one activity per direction may be outstanding on a given end.
    A message may enclose at most one link end, whose ownership moves to
    the receiver on delivery.  Destroying a link, or the termination of a
    process, aborts the activities of both ends with [E_destroyed].

    All calls except [wait] complete in bounded time and return a status
    code.  Every call charges the caller's fiber the configured per-call
    CPU cost — including the validity checks the kernel performs on
    arguments that a careful runtime package would never pass (the
    duplicated-checking overhead discussed in the paper's §6). *)

open Types

type t

exception Process_exit
(** A process body may raise this to terminate itself; treated as a
    normal exit. *)

val create :
  Sim.Engine.t -> ?costs:Costs.t -> ?stats:Sim.Stats.t -> nodes:int -> unit -> t

val engine : t -> Sim.Engine.t
val stats : t -> Sim.Stats.t
val costs : t -> Costs.t
val nodes : t -> int

(** {1 Processes} *)

val spawn_process :
  t -> ?daemon:bool -> node:node -> name:string -> (pid -> unit) -> pid
(** Starts a process as a fiber.  When the body returns or raises, the
    process terminates and the kernel destroys every link end it owns. *)

val process_alive : t -> pid -> bool
val process_name : t -> pid -> string
val process_node : t -> pid -> node

(** {1 Kernel calls}

    Each must be invoked from the owning process's fiber. *)

val make_link : t -> pid -> (link_end * link_end) option
(** Creates a link; both ends initially belong to the caller.  [None] only
    if the caller is dead. *)

val destroy : t -> pid -> link_end -> status
(** Destroys the whole link given one end. *)

val send : t -> pid -> link_end -> ?enclosure:link_end -> bytes -> status
(** Starts a send activity.  [E_busy] if one is already outstanding;
    [E_enclosure_busy]/[E_enclosure_self]/[E_bad_end] on invalid
    enclosures.  Completion (with [Sent]) arrives via [wait] once the
    peer has received the message. *)

val receive : t -> pid -> link_end -> max_len:int -> status
(** Starts a receive activity; completion carries the data. *)

val cancel : t -> pid -> link_end -> direction -> status
(** [Ok_done] if the activity existed and had not yet been matched with
    the peer (it is removed and never completes); [E_no_activity] if
    there was nothing to cancel; [E_busy] if the activity was already
    matched — its completion will still arrive through [wait]. *)

val wait : t -> pid -> completion
(** Blocks until an activity of this process completes. *)

val poll : t -> pid -> completion option
(** Non-blocking [wait]. *)

val terminate : t -> pid -> unit
(** Destroys all links of [pid] and marks it dead.  Called automatically
    when a process body returns. *)

(** {1 Introspection (for tests; not part of the Charlotte interface)} *)

val owner_of : t -> link_end -> pid option
val link_destroyed : t -> link_end -> bool

val transfer_end : t -> link_end -> to_:pid -> unit
(** Reassigns ownership of an idle end (simulation bootstrap only: models
    a link inherited from a parent process; real ends move by message
    enclosure).  The end must have no outstanding activities. *)
