lib/charlotte/types.ml: Format
