lib/charlotte/kernel.mli: Costs Sim Types
