lib/charlotte/kernel.ml: Array Bytes Costs Engine Hashtbl List Netmodel Printf Sim Stats Sync Time Types
