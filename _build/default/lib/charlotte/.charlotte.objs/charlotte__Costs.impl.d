lib/charlotte/costs.ml: Sim
