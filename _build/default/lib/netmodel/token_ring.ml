open Sim

type t = {
  engine : Engine.t;
  stats : Stats.t;
  byte_time : Time.t;
  frame_overhead : Time.t;
  token_latency : Time.t;
  n_stations : int;
  mutable busy_until : Time.t;
}

let create engine ?stats ?byte_time ?frame_overhead ?token_latency ~stations () =
  if stations <= 0 then invalid_arg "Token_ring.create: stations";
  {
    engine;
    stats = (match stats with Some s -> s | None -> Stats.create ());
    (* 10 Mbit/s -> 0.8 us per byte. *)
    byte_time = Option.value byte_time ~default:(Time.ns 800);
    frame_overhead = Option.value frame_overhead ~default:(Time.us 120);
    token_latency = Option.value token_latency ~default:(Time.us 60);
    n_stations = stations;
    busy_until = Time.zero;
  }

let stations t = t.n_stations

let frame_time t ~bytes =
  Time.add t.frame_overhead (Time.scale t.byte_time bytes)

let transmit t ~src ~dst ~duration ~on_delivered =
  if src < 0 || src >= t.n_stations || dst < 0 || dst >= t.n_stations then
    invalid_arg "Token_ring.transmit: bad station";
  let now = Engine.now t.engine in
  Stats.incr t.stats "ring.frames";
  if src = dst then begin
    (* Loopback: no token, no ring occupation. *)
    Stats.incr t.stats "ring.loopback_frames";
    Engine.schedule_after t.engine duration on_delivered
  end
  else begin
    let start = Time.add (Time.max now t.busy_until) t.token_latency in
    let finish = Time.add start duration in
    let queued = Time.sub start now in
    if not (Time.is_zero (Time.sub queued t.token_latency)) then
      Stats.incr t.stats "ring.queued_frames";
    Stats.incr t.stats "ring.busy_ns" ~by:(Time.to_ns duration);
    t.busy_until <- finish;
    Engine.schedule_at t.engine finish on_delivered
  end

let stats t = t.stats
