(** Model of the BBN Butterfly's multistage interconnection switch.

    Unlike the ring and the bus, the Butterfly switch supports many
    concurrent paths, so transfers do not serialize against each other.
    A remote memory access pays a path-setup latency proportional to the
    number of switch stages (log4 of the machine size) plus a per-byte
    cost; local accesses bypass the switch entirely. *)

type t

val create :
  Sim.Engine.t ->
  ?stats:Sim.Stats.t ->
  ?stage_latency:Sim.Time.t ->
  ?remote_byte_time:Sim.Time.t ->
  ?local_byte_time:Sim.Time.t ->
  processors:int ->
  unit ->
  t

val processors : t -> int
val stages : t -> int

val access_time : t -> src:int -> dst:int -> bytes:int -> Sim.Time.t
(** Cost of a block transfer of [bytes] between the memory of processor
    [dst] and processor [src] (local when equal). *)

val transfer :
  t -> src:int -> dst:int -> bytes:int -> on_done:(unit -> unit) -> unit

val stats : t -> Sim.Stats.t
