lib/netmodel/butterfly_switch.ml: Engine Option Sim Stats Time
