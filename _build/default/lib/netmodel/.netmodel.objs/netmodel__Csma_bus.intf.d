lib/netmodel/csma_bus.mli: Sim
