lib/netmodel/csma_bus.ml: Engine Option Rng Sim Stats Time
