lib/netmodel/butterfly_switch.mli: Sim
