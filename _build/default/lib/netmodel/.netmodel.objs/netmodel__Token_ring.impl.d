lib/netmodel/token_ring.ml: Engine Option Sim Stats Time
