lib/netmodel/token_ring.mli: Sim
