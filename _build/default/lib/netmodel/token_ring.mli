(** Model of the Crystal multicomputer's 10 Mbit/s Proteon token ring.

    The ring is a single shared medium: one frame is on the wire at a
    time.  A station that wants to transmit waits for the medium to be
    free, then for the token (a fixed average rotation cost), then holds
    the wire for the frame time.  Delivery fires when the frame has fully
    arrived at the destination.

    The model intentionally folds kernel protocol time into the caller's
    [duration]: the kernel decides how long its message occupies the
    machine; the ring adds queueing and token latency on top. *)

type t

val create :
  Sim.Engine.t ->
  ?stats:Sim.Stats.t ->
  ?byte_time:Sim.Time.t ->
  ?frame_overhead:Sim.Time.t ->
  ?token_latency:Sim.Time.t ->
  stations:int ->
  unit ->
  t

val stations : t -> int

val frame_time : t -> bytes:int -> Sim.Time.t
(** Wire occupation for a frame of the given size (overhead + bytes). *)

val transmit :
  t -> src:int -> dst:int -> duration:Sim.Time.t -> on_delivered:(unit -> unit) -> unit
(** Queues a transmission occupying the ring for [duration].  Same-station
    traffic still uses the loopback path (Charlotte sends everything
    through the kernel) but skips the token wait.  [on_delivered] runs in
    scheduler context at delivery time. *)

val stats : t -> Sim.Stats.t
