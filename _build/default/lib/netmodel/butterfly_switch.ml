open Sim

type t = {
  engine : Engine.t;
  stats : Stats.t;
  stage_latency : Time.t;
  remote_byte_time : Time.t;
  local_byte_time : Time.t;
  n_processors : int;
  n_stages : int;
}

let log4_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 4) in
  go 0 1

let create engine ?stats ?stage_latency ?remote_byte_time ?local_byte_time
    ~processors () =
  if processors <= 0 then invalid_arg "Butterfly_switch.create: processors";
  {
    engine;
    stats = (match stats with Some s -> s | None -> Stats.create ());
    stage_latency = Option.value stage_latency ~default:(Time.us 2);
    (* Remote reference through the switch ~0.85 us/byte; local ~0.25
       (calibrated so a LYNX byte costs ~1.1 us end to end, §5.3). *)
    remote_byte_time = Option.value remote_byte_time ~default:(Time.ns 850);
    local_byte_time = Option.value local_byte_time ~default:(Time.ns 250);
    n_processors = processors;
    n_stages = max 1 (log4_ceil processors);
  }

let processors t = t.n_processors
let stages t = t.n_stages

let access_time t ~src ~dst ~bytes =
  if src = dst then Time.scale t.local_byte_time bytes
  else
    Time.add
      (Time.scale t.stage_latency t.n_stages)
      (Time.scale t.remote_byte_time bytes)

let transfer t ~src ~dst ~bytes ~on_done =
  if src < 0 || src >= t.n_processors || dst < 0 || dst >= t.n_processors then
    invalid_arg "Butterfly_switch.transfer: bad processor";
  Stats.incr t.stats "switch.transfers";
  Stats.incr t.stats "switch.bytes" ~by:bytes;
  if src <> dst then Stats.incr t.stats "switch.remote_transfers";
  Engine.schedule_after t.engine (access_time t ~src ~dst ~bytes) on_done

let stats t = t.stats
