(** Shared types for the SODA kernel interface (Kepecs & Solomon;
    paper §4.1). *)

type pid = int
type node = int

(** Names are unique over space and time ([new_name]); a process
    {e advertises} the names it is willing to respond to. *)
type name = int

(** Out-of-band data carried by requests and accepts.  SODA bounds its
    size; the kernel enforces [oob_limit] (bytes). *)
type oob = bytes

type req_id = int

(** What a request asks for, derived from its buffer sizes: both zero is
    a [signal], send-only a [put], receive-only a [get], both an
    [exchange]. *)
type req_kind = Put | Get | Signal | Exchange

let kind_of_sizes ~send_len ~recv_max =
  match (send_len > 0, recv_max > 0) with
  | true, false -> Put
  | false, true -> Get
  | false, false -> Signal
  | true, true -> Exchange

let kind_to_string = function
  | Put -> "put"
  | Get -> "get"
  | Signal -> "signal"
  | Exchange -> "exchange"

(** A request made of this process by some other process, as presented to
    the software-interrupt handler. *)
type incoming = {
  i_id : req_id;  (** identifies the request for a later [accept] *)
  i_from : pid;
  i_name : name;
  i_oob : oob;
  i_send_len : int;  (** bytes the requester wants to send *)
  i_recv_max : int;  (** bytes the requester is willing to receive *)
}

(** Completion of one of this process's own requests. *)
type completion = {
  c_id : req_id;
  c_oob : oob;  (** out-of-band data from the accepter *)
  c_data : bytes;  (** data the accepter sent us (<= our recv_max) *)
  c_taken : int;  (** how many of our bytes the accepter took *)
}

type abort_reason = Peer_crashed | Name_not_advertised | Request_withdrawn

let abort_reason_to_string = function
  | Peer_crashed -> "peer-crashed"
  | Name_not_advertised -> "name-not-advertised"
  | Request_withdrawn -> "request-withdrawn"

(** Software interrupts delivered to a process's handler. *)
type interrupt =
  | Request of incoming
  | Completed of completion
  | Aborted of { a_id : req_id; a_reason : abort_reason }
      (** one of our own requests failed *)
  | Withdrawn of { w_id : req_id }
      (** a request previously presented to us was withdrawn by the
          requester before we accepted it *)
