lib/soda/kernel.ml: Bytes Costs Engine Hashtbl List Netmodel Printf Queue Rng Sim Stats Sync Time Types
