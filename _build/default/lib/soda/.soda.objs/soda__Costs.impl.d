lib/soda/costs.ml: Sim
