lib/soda/kernel.mli: Costs Sim Types
