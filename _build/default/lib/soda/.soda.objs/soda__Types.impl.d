lib/soda/types.ml:
