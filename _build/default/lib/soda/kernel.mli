(** Simulator for SODA, Kepecs's "Simplified Operating system for
    Distributed Applications" (paper §4.1).

    Every node has a client processor and a kernel processor.  Processes
    advertise {e names}; communication is by {e requests} — a process
    asks to transfer data to/from (pid, name) with a little out-of-band
    data — which the target may {e accept} at any later time.  Both
    events are delivered as software interrupts to a per-process handler.

    The handler runs in scheduler context and must not block; this
    mirrors SODA's interrupt discipline.  While a process is {e masked}
    (handler closed), completions queue and requests are retried
    periodically by the requesting kernel. *)

open Types

type t

exception Process_exit
(** A process body may raise this to terminate itself; treated as a
    normal exit. *)

val create :
  Sim.Engine.t -> ?costs:Costs.t -> ?stats:Sim.Stats.t -> nodes:int -> unit -> t

val engine : t -> Sim.Engine.t
val stats : t -> Sim.Stats.t
val costs : t -> Costs.t
val nodes : t -> int

(** {1 Processes} *)

val spawn_process :
  t -> ?daemon:bool -> node:node -> name:string -> (pid -> unit) -> pid
(** Nodes outnumber processes in SODA; we allow at most one process per
    node and raise [Invalid_argument] otherwise. *)

val process_alive : t -> pid -> bool
val process_node : t -> pid -> node
val pids : t -> pid list
(** All processes ever created ("SODA makes it easy to guess their
    ids"), including dead ones. *)

val terminate : t -> pid -> unit

(** {1 Names} *)

val new_name : t -> pid -> name
(** A name unique over space and time. *)

val advertise : t -> pid -> name -> unit
val unadvertise : t -> pid -> name -> unit
val advertises : t -> pid -> name -> bool

val discover : t -> pid -> name -> pid option
(** Unreliable broadcast search for a process advertising [name].
    Blocks the caller for up to the configured timeout; each potential
    responder's reply can be lost.  Returns the first responder. *)

(** {1 Interrupts} *)

val set_handler : t -> pid -> (interrupt -> unit) -> unit
val mask : t -> pid -> unit
val unmask : t -> pid -> unit

(** {1 Requests} *)

val request :
  t ->
  pid ->
  dst:pid ->
  name:name ->
  oob:oob ->
  data:bytes ->
  recv_max:int ->
  (req_id, [ `Pair_limit | `Oob_too_big ]) result
(** Starts a request; the caller continues immediately.  The outcome
    arrives as a [Completed] or [Aborted] interrupt.  [`Pair_limit] if
    too many requests are already outstanding to this destination
    (paper §4.2.1). *)

val accept :
  t ->
  pid ->
  req:req_id ->
  oob:oob ->
  data:bytes ->
  recv_max:int ->
  (bytes, [ `Unknown | `Requester_gone ]) result
(** Accepts a request previously presented to this process.  Data moves
    in both directions (each truncated to the other side's limit); the
    requester feels a [Completed] interrupt.  Returns the requester's
    data (at most [recv_max] bytes); the calling fiber is charged the
    inbound transfer time. *)

val withdraw : t -> pid -> req_id -> bool
(** Withdraws one of our not-yet-accepted requests.  The target feels a
    [Withdrawn] interrupt if it had already been presented.  False if
    the request was already accepted or finished. *)

val outstanding : t -> src:pid -> dst:pid -> int
(** Current outstanding request count for the pair (for tests). *)
