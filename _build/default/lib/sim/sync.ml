module Waitq = struct
  type 'a t = { engine : Engine.t; q : 'a Engine.waker Queue.t }

  let create engine = { engine; q = Queue.create () }

  let wait t =
    Engine.suspend t.engine ~reason:"waitq" (fun waker -> Queue.add waker t.q)

  let signal t v =
    match Queue.take_opt t.q with
    | None -> false
    | Some waker ->
      waker (Ok v);
      true

  let signal_error t exn =
    match Queue.take_opt t.q with
    | None -> false
    | Some waker ->
      waker (Error exn);
      true

  let broadcast_error t exn =
    let n = Queue.length t.q in
    Queue.iter (fun waker -> waker (Error exn)) t.q;
    Queue.clear t.q;
    n

  let waiters t = Queue.length t.q
end

module Ivar = struct
  type 'a state = Empty | Full of 'a | Failed of exn

  type 'a t = { mutable state : 'a state; waiters : 'a Waitq.t }

  let create engine = { state = Empty; waiters = Waitq.create engine }

  let fill t v =
    match t.state with
    | Empty ->
      t.state <- Full v;
      while Waitq.signal t.waiters v do
        ()
      done
    | Full _ | Failed _ -> invalid_arg "Ivar.fill: already filled"

  let fill_error t exn =
    match t.state with
    | Empty ->
      t.state <- Failed exn;
      ignore (Waitq.broadcast_error t.waiters exn)
    | Full _ | Failed _ -> invalid_arg "Ivar.fill_error: already filled"

  let try_fill t v =
    match t.state with
    | Empty ->
      fill t v;
      true
    | Full _ | Failed _ -> false

  let read t =
    match t.state with
    | Full v -> v
    | Failed exn -> raise exn
    | Empty -> Waitq.wait t.waiters

  let is_filled t = match t.state with Empty -> false | _ -> true
  let peek t = match t.state with Full v -> Some v | _ -> None
end

module Mailbox = struct
  type 'a t = {
    items : 'a Queue.t;
    takers : 'a Waitq.t;
    mutable poisoned : exn option;
  }

  let create engine =
    { items = Queue.create (); takers = Waitq.create engine; poisoned = None }

  let put t v =
    if not (Waitq.signal t.takers v) then Queue.add v t.items

  let take t =
    match Queue.take_opt t.items with
    | Some v -> v
    | None -> (
      match t.poisoned with
      | Some exn -> raise exn
      | None -> Waitq.wait t.takers)

  let take_opt t = Queue.take_opt t.items
  let peek_opt t = Queue.peek_opt t.items
  let length t = Queue.length t.items
  let is_empty t = Queue.is_empty t.items

  let poison t exn =
    t.poisoned <- Some exn;
    ignore (Waitq.broadcast_error t.takers exn)
end

module Semaphore = struct
  type t = { mutable count : int; waiters : unit Waitq.t }

  let create engine count =
    if count < 0 then invalid_arg "Semaphore.create: negative count";
    { count; waiters = Waitq.create engine }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1 else Waitq.wait t.waiters

  let release t =
    if not (Waitq.signal t.waiters ()) then t.count <- t.count + 1

  let available t = t.count
end
