(** Blocking synchronization primitives for fibers.

    Each structure captures its engine at creation time.  All [take]/
    [read]/[acquire] operations suspend the calling fiber; all producers
    are non-blocking and may be called from scheduler context (e.g. from a
    [schedule_at] task or an interrupt handler). *)

module Ivar : sig
  (** Write-once cell. *)

  type 'a t

  val create : Engine.t -> 'a t
  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val fill_error : 'a t -> exn -> unit
  val try_fill : 'a t -> 'a -> bool
  val read : 'a t -> 'a
  (** Blocks until filled; re-raises if filled with an error. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option
end

module Mailbox : sig
  (** Unbounded FIFO queue with blocking take. *)

  type 'a t

  val create : Engine.t -> 'a t
  val put : 'a t -> 'a -> unit
  val take : 'a t -> 'a
  (** Blocks while empty.  Raises if the mailbox is poisoned and empty. *)

  val take_opt : 'a t -> 'a option
  val peek_opt : 'a t -> 'a option
  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val poison : 'a t -> exn -> unit
  (** Wakes all current and future takers with the exception once the
      queue has drained.  Items already queued are still delivered. *)
end

module Semaphore : sig
  type t

  val create : Engine.t -> int -> t
  val acquire : t -> unit
  val release : t -> unit
  val available : t -> int
end

module Waitq : sig
  (** A bare queue of suspended fibers — building block for conditions. *)

  type 'a t

  val create : Engine.t -> 'a t
  val wait : 'a t -> 'a
  (** Suspends until signalled. *)

  val signal : 'a t -> 'a -> bool
  (** Wakes the oldest waiter; false if none was waiting. *)

  val signal_error : 'a t -> exn -> bool
  val broadcast_error : 'a t -> exn -> int
  val waiters : 'a t -> int
end
