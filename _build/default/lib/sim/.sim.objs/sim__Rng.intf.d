lib/sim/rng.mli:
