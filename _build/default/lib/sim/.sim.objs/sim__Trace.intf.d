lib/sim/trace.mli: Time
