lib/sim/heap.mli:
