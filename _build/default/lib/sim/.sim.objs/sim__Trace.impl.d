lib/sim/trace.ml: Array Char Int64 String Time
