lib/sim/engine.ml: Effect Heap List Printexc Printf Rng String Time Trace
