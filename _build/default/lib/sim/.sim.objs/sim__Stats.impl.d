lib/sim/stats.ml: Array Float Format Hashtbl List Option Stdlib String Time
