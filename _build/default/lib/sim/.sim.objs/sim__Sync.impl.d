lib/sim/sync.ml: Engine Queue
