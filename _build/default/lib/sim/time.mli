(** Virtual time for the discrete-event simulator.

    Time is an integer count of nanoseconds since the start of the
    simulation.  Integers keep the simulator fully deterministic: there is
    no floating-point drift, and two runs with the same seed produce
    identical event orderings. *)

type t = private int

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_ms_float : float -> t
(** [of_ms_float f] is [f] milliseconds, rounded to the nearest ns. *)

val of_us_float : float -> t

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] saturates at {!zero} rather than going negative. *)

val diff : t -> t -> t
(** [diff a b] is [abs (a - b)]. *)

val scale : t -> int -> t
val mul_float : t -> float -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t

val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as milliseconds with microsecond precision, e.g. ["57.231ms"]. *)

val to_string : t -> string
