type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let child_seed = next_int64 t in
  { state = mix child_seed }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
