type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 64

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t name (ref by)

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear = Hashtbl.reset
let snapshot = to_list

let diff ~before ~after =
  let base = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before;
  List.filter_map
    (fun (k, v) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt base k) in
      if v = prev then None else Some (k, v - prev))
    after

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter (fun (k, v) -> Format.fprintf ppf "%-40s %d@," k v) (to_list t);
  Format.pp_close_box ppf ()

module Series = struct
  type s = { mutable obs : Time.t list; mutable n : int }

  let create () = { obs = []; n = 0 }

  let add s t =
    s.obs <- t :: s.obs;
    s.n <- s.n + 1

  let count s = s.n

  let fail_empty () = invalid_arg "Stats.Series: empty series"

  let mean s =
    if s.n = 0 then fail_empty ();
    let total = List.fold_left (fun acc t -> acc + Time.to_ns t) 0 s.obs in
    Time.ns (total / s.n)

  let min s =
    if s.n = 0 then fail_empty ();
    List.fold_left Time.min (List.hd s.obs) s.obs

  let max s =
    if s.n = 0 then fail_empty ();
    List.fold_left Time.max (List.hd s.obs) s.obs

  let percentile s p =
    if s.n = 0 then fail_empty ();
    let sorted = List.sort Time.compare s.obs |> Array.of_list in
    let rank =
      Stdlib.min (Array.length sorted - 1)
        (int_of_float (Float.round (p *. float_of_int (Array.length sorted - 1))))
    in
    sorted.(rank)

  let pp ppf s =
    if s.n = 0 then Format.fprintf ppf "(empty)"
    else
      Format.fprintf ppf "n=%d mean=%a min=%a max=%a" s.n Time.pp (mean s)
        Time.pp (min s) Time.pp (max s)
end
