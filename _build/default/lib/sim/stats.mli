(** Named counters and latency recorders for instrumentation.

    Kernels and LYNX backends increment counters as they run; benches and
    tests snapshot them afterwards.  Counters are cheap and passive — they
    never affect simulation behaviour. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
val get : t -> string -> int
(** 0 for a counter that was never incremented. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val clear : t -> unit

val snapshot : t -> (string * int) list
val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter increase between two snapshots (counters that did not
    change are omitted). *)

val pp : Format.formatter -> t -> unit

module Series : sig
  (** Accumulates observations (virtual durations) for summary stats. *)

  type s

  val create : unit -> s
  val add : s -> Time.t -> unit
  val count : s -> int
  val mean : s -> Time.t
  val min : s -> Time.t
  val max : s -> Time.t
  val percentile : s -> float -> Time.t
  (** [percentile s 0.99]; nearest-rank on the sorted observations. *)

  val pp : Format.formatter -> s -> unit
end
