type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_ms_float f = int_of_float (Float.round (f *. 1e6))
let of_us_float f = int_of_float (Float.round (f *. 1e3))
let to_ns t = t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9
let add a b = a + b
let sub a b = Stdlib.max 0 (a - b)
let diff a b = abs (a - b)
let scale t k = t * k
let mul_float t f = int_of_float (Float.round (float_of_int t *. f))
let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let max (a : t) b = Stdlib.max a b
let min (a : t) b = Stdlib.min a b
let is_zero t = t = 0
let pp ppf t = Format.fprintf ppf "%.3fms" (to_ms t)
let to_string t = Format.asprintf "%a" pp t
