lib/metrics/report.mli:
