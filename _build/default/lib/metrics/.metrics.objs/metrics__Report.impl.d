lib/metrics/report.ml: Float List Printf String
