lib/metrics/source_size.ml: Array Filename Fun List String Sys
