lib/metrics/source_size.mli:
