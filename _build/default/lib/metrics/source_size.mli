(** Source-size accounting for the code-size comparison (paper §3.3 vs
    §5.3): lines of implementation per backend library, measured the way
    the paper measures its run-time packages. *)

type count = {
  files : int;
  total_lines : int;
  code_lines : int;  (** non-blank lines containing code *)
  comment_lines : int;  (** non-blank lines that are comment-only *)
}

val zero : count
val add : count -> count -> count

val count_file : string -> count
(** Classifies the lines of one OCaml source file (tracks comment
    nesting across lines). *)

val count_dir : string -> count
(** Recursively counts every [.ml]/[.mli] under a directory; zero if the
    directory does not exist. *)

val find_repo_root : unit -> string option
(** Walks upward from the current directory to the [dune-project]. *)

val backend_sizes : unit -> (string * count) list option
(** Sizes of [lynx_charlotte], [lynx_soda], [lynx_chrysalis] and the
    shared [lynx] core, relative to the repository root; [None] when the
    sources are not accessible. *)
