(** Table formatting and paper-vs-measured comparison helpers for the
    bench harness. *)

type cell = string

val table : header:cell list -> cell list list -> unit
(** Prints an ASCII table to stdout; column widths fit the content. *)

val ms : float -> string
(** ["57.24 ms"]. *)

val ratio : float -> string
(** ["3.02x"]. *)

val vs_paper : paper:float -> measured:float -> string
(** ["57.27 (paper 57.0, +0.5%)"]. *)

val within : pct:float -> paper:float -> measured:float -> bool
(** Whether [measured] deviates from [paper] by at most [pct] percent. *)

val check_line : label:string -> pct:float -> paper:float -> measured:float -> bool
(** Prints one "[ok]"/"[MISMATCH]" comparison line; returns the verdict. *)

val section : string -> unit
(** Prints a section banner. *)
