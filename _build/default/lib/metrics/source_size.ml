(** Source-size accounting for the code-size comparison (paper §3.3 vs
    §5.3: 4000 lines of C for the Charlotte run-time package against
    3600 for Chrysalis, with ~45% of the former devoted to communication
    special cases).

    We measure our own backend libraries the same way the paper measures
    its run-time packages: lines of implementation per backend.  The
    absolute numbers differ from 1986 C, but the paper's claim is
    relative, and the relative shape is what the bench checks. *)

type count = {
  files : int;
  total_lines : int;
  code_lines : int;  (** non-blank, non-comment-only lines *)
  comment_lines : int;
}

let zero = { files = 0; total_lines = 0; code_lines = 0; comment_lines = 0 }

let add a b =
  {
    files = a.files + b.files;
    total_lines = a.total_lines + b.total_lines;
    code_lines = a.code_lines + b.code_lines;
    comment_lines = a.comment_lines + b.comment_lines;
  }

(* Line classification is approximate (OCaml comments can nest and span
   lines); we track comment depth with a small scanner. *)
let count_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let total = ref 0 and code = ref 0 and comment = ref 0 in
      let depth = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr total;
           let trimmed = String.trim line in
           if String.length trimmed = 0 then ()
           else begin
             let started_in_comment = !depth > 0 in
             let has_code = ref false in
             let i = ref 0 in
             let n = String.length trimmed in
             while !i < n do
               if
                 !i + 1 < n
                 && trimmed.[!i] = '('
                 && trimmed.[!i + 1] = '*'
               then begin
                 incr depth;
                 i := !i + 2
               end
               else if
                 !i + 1 < n && trimmed.[!i] = '*' && trimmed.[!i + 1] = ')'
               then begin
                 if !depth > 0 then decr depth;
                 i := !i + 2
               end
               else begin
                 if !depth = 0 then has_code := true;
                 incr i
               end
             done;
             if !has_code && not (started_in_comment && !depth > 0 && not !has_code)
             then incr code
             else incr comment
           end
         done
       with End_of_file -> ());
      { files = 1; total_lines = !total; code_lines = !code; comment_lines = !comment })

let rec count_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> zero
  | entries ->
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then add acc (count_dir path)
        else if Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
        then add acc (count_file path)
        else acc)
      zero entries

(** Walks upward from the current directory to the repository root
    (identified by [dune-project]). *)
let find_repo_root () =
  let rec up dir depth =
    if depth > 8 then None
    else if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

(** Lines of each backend library, relative to the repo root.  [None]
    when the sources are not accessible (e.g. an installed binary). *)
let backend_sizes () =
  match find_repo_root () with
  | None -> None
  | Some root ->
    let dir name_ = Filename.concat (Filename.concat root "lib") name_ in
    Some
      (List.map
         (fun name_ -> (name_, count_dir (dir name_)))
         [ "lynx_charlotte"; "lynx_soda"; "lynx_chrysalis"; "lynx" ])
