examples/quickstart.ml: Array Engine Harness Lynx Printf Sim Sync Sys Time
