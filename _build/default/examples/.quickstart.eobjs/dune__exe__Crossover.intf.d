examples/crossover.mli:
