examples/server_farm.ml: Array Engine Harness List Lynx Printf Sim Stats Sync Sys Time
