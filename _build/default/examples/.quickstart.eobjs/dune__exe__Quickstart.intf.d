examples/quickstart.mli:
