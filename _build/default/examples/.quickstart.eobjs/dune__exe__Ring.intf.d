examples/ring.mli:
