examples/mapreduce.mli:
