examples/crossover.ml: Harness List Metrics Printf
