examples/pipeline.ml: Array Engine Harness List Lynx Printf Sim String Sync Sys Time
