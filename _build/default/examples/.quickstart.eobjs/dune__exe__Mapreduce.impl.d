examples/mapreduce.ml: Array Engine Fun Harness List Lynx Printf Sim Sync Sys Time
