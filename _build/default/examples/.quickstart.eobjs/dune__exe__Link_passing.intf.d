examples/link_passing.mli:
