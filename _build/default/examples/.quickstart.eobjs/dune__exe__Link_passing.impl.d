examples/link_passing.ml: Array Harness List Printf Sim String Sys
