examples/name_service.ml: Array Engine Harness List Lynx Printf Sim String Sys Time
