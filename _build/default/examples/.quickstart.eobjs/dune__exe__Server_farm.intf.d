examples/server_farm.mli:
