examples/pipeline.mli:
