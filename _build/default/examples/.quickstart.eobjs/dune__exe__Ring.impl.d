examples/ring.ml: Array Engine Harness List Lynx Printf Sim Sys Time
