examples/name_service.mli:
