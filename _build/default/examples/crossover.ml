(* Crossover: where does SODA stop beating Charlotte?

   Run with:   dune exec examples/crossover.exe

   The paper (§4.3, footnote 2) reports that SODA was three times as
   fast as Charlotte for small messages, but its 1 Mbit/s network made
   the two break even "somewhere between 1K and 2K bytes".  This sweep
   reproduces the crossover with the LYNX runtime on both kernels. *)

let payloads = [ 0; 250; 500; 1000; 1250; 1500; 1750; 2000; 2500 ]

let () =
  print_endline "RPC latency vs payload (bytes each way), LYNX runtime:";
  let charlotte = Harness.Backend_world.charlotte in
  let soda = Harness.Backend_world.soda in
  let rows =
    List.map
      (fun payload ->
        let c = Harness.Rpc_bench.run charlotte ~payload () in
        let s = Harness.Rpc_bench.run soda ~payload () in
        let cm = Harness.Rpc_bench.mean_ms c
        and sm = Harness.Rpc_bench.mean_ms s in
        (payload, cm, sm))
      payloads
  in
  Metrics.Report.table
    ~header:[ "payload"; "charlotte"; "soda"; "winner" ]
    (List.map
       (fun (p, cm, sm) ->
         [
           string_of_int p;
           Metrics.Report.ms cm;
           Metrics.Report.ms sm;
           (if sm < cm then "soda" else "charlotte");
         ])
       rows);
  (* Locate the crossover. *)
  let rec find = function
    | (p1, c1, s1) :: ((p2, c2, s2) :: _ as rest) ->
      if s1 < c1 && s2 >= c2 then Some (p1, p2) else find rest
    | _ -> None
  in
  match find rows with
  | Some (lo, hi) ->
    Printf.printf
      "crossover between %d and %d bytes (paper: between 1K and 2K)\n" lo hi
  | None -> print_endline "no crossover found in the sweep range"
