(* Map-reduce: a master fans work out to a pool of workers it found by
   name.

   Run with:   dune exec examples/mapreduce.exe [backend] [n_workers]

   The "pieces of a multi-process application" style from the paper's
   introduction: workers register themselves with the name server at
   startup; a master that shares no code with them looks the pool up,
   scatters chunks of an array as typed remote operations (one coroutine
   per worker, all in flight at once), and folds the partial sums. *)

open Sim
module P = Lynx.Process
module L = Lynx.Lang
module NS = Lynx.Nameserver

let sum_op = L.defop ~name:"sum" ~req:L.(list int) ~resp:L.int

let wait_first_link p =
  let rec go () =
    match P.live_links p with
    | l :: _ -> l
    | [] ->
      P.sleep p (Time.ms 1);
      go ()
  in
  go ()

let () =
  let backend = if Array.length Sys.argv > 1 then Sys.argv.(1) else "chrysalis" in
  let n_workers =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 3
  in
  Printf.printf "Map-reduce on %s with %d workers\n" backend n_workers;
  let (module W) = Harness.Backend_world.find_exn backend in
  let engine = Engine.create () in
  let world = W.create engine ~nodes:(n_workers + 3) in

  let ns_member =
    W.spawn world ~daemon:true ~node:0 ~name:"nameserver" NS.body
  in

  let workers =
    List.init n_workers (fun i ->
        W.spawn world ~daemon:true ~node:(i + 1)
          ~name:(Printf.sprintf "worker%d" i) (fun p ->
            let ns = wait_first_link p in
            NS.serve_clones p ~ns ~on_client:(fun mine ->
                L.serve p mine sum_op (fun xs ->
                    (* Simulated per-element compute time. *)
                    P.sleep p (Time.us (50 * List.length xs));
                    List.fold_left ( + ) 0 xs));
            NS.register p ~ns ~name:(Printf.sprintf "summer%d" i);
            P.park p))
  in

  let master =
    W.spawn world ~node:(n_workers + 1) ~name:"master" (fun p ->
        let ns = wait_first_link p in
        P.sleep p (Time.ms 300) (* registrations *);
        let data = List.init 120 (fun i -> i + 1) in
        let expected = List.fold_left ( + ) 0 data in
        (* Resolve the pool. *)
        let pool =
          List.filter_map
            (fun i -> NS.lookup p ~ns ~name:(Printf.sprintf "summer%d" i))
            (List.init n_workers Fun.id)
        in
        Printf.printf "  master resolved %d workers\n" (List.length pool);
        (* Scatter: chunk i goes to worker (i mod pool). *)
        let chunks =
          let rec split xs =
            if List.length xs <= 40 then [ xs ]
            else
              let rec take k = function
                | x :: rest when k > 0 ->
                  let got, left = take (k - 1) rest in
                  (x :: got, left)
                | rest -> ([], rest)
              in
              let c, rest = take 40 xs in
              c :: split rest
          in
          split data
        in
        let t0 = Engine.now engine in
        let total = ref 0 in
        let pending = ref (List.length chunks) in
        let all_done = Sync.Ivar.create engine in
        List.iteri
          (fun i chunk ->
            let worker = List.nth pool (i mod List.length pool) in
            P.spawn_thread p (fun () ->
                let s = L.call p worker sum_op chunk in
                total := !total + s;
                Printf.printf "  chunk %d -> %d\n" i s;
                decr pending;
                if !pending = 0 then Sync.Ivar.fill all_done ()))
          chunks;
        Sync.Ivar.read all_done;
        Printf.printf "  total %d (expected %d) in %s\n" !total expected
          (Time.to_string (Time.sub (Engine.now engine) t0)))
  in

  ignore
    (Engine.spawn engine ~name:"wiring" (fun () ->
         List.iter
           (fun m -> ignore (W.link_between world m ns_member))
           (workers @ [ master ])));

  Engine.run engine;
  Printf.printf "simulated time: %s\n" (Time.to_string (Engine.now engine))
