(* Pipeline: a multi-process dataflow pipeline connected by links.

   Run with:   dune exec examples/pipeline.exe [backend] [n_items]

   Stage processes know nothing of each other; a control process wires
   them by {e moving link ends} in "wire" requests.  Items then flow
   through as nested remote operations: each stage transforms the item
   and calls the next stage before replying upstream.  Demonstrates the
   loosely-coupled style LYNX was designed for, and the coroutine
   mechanism: each stage overlaps several in-flight items. *)

open Sim
module P = Lynx.Process
module V = Lynx.Value

let stages =
  [ ("double", fun x -> 2 * x); ("inc", fun x -> x + 1); ("square", fun x -> x * x) ]

let () =
  let backend = if Array.length Sys.argv > 1 then Sys.argv.(1) else "chrysalis" in
  let n_items =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5
  in
  Printf.printf "Pipeline (%s) on %s with %d items\n"
    (String.concat " -> " (List.map fst stages))
    backend n_items;
  let (module W) = Harness.Backend_world.find_exn backend in
  let engine = Engine.create () in
  let world = W.create engine ~nodes:8 in

  let control_plan = Sync.Ivar.create engine in
  let first_stage = Sync.Ivar.create engine in
  let wired = Sync.Ivar.create engine in

  (* Each stage: the first request is "wire" (carrying the link to the
     next stage, if any); after that it serves "item" forever. *)
  let stage_members =
    List.mapi
      (fun i (sname, f) ->
        W.spawn world ~daemon:true ~node:(i + 1) ~name:sname (fun p ->
            let wire = P.await_request p () in
            let next =
              match wire.P.in_args with [ V.Link l ] -> Some l | _ -> None
            in
            wire.P.in_reply [];
            let rec serve () =
              let inc = P.await_request p () in
              (* Each item gets its own coroutine so the stage can
                 overlap several in-flight items. *)
              P.spawn_thread p (fun () ->
                  match inc.P.in_args with
                  | [ V.Int x ] ->
                    let y = f x in
                    let out =
                      match next with
                      | None -> y
                      | Some nxt -> (
                        match P.call p nxt ~op:"item" [ V.Int y ] with
                        | [ V.Int z ] -> z
                        | _ -> y)
                    in
                    inc.P.in_reply [ V.Int out ]
                  | _ -> inc.P.in_reply []);
              serve ()
            in
            try serve () with Lynx.Excn.Link_destroyed -> ()))
      stages
  in

  (* Control process: tells each stage where its successor lives by
     moving a link end in the wire request. *)
  let control =
    W.spawn world ~daemon:true ~node:6 ~name:"control" (fun p ->
        let plan = Sync.Ivar.read control_plan in
        List.iter
          (fun (ctrl_link, down) ->
            ignore
              (P.call p ctrl_link ~op:"wire"
                 (match down with None -> [] | Some l -> [ V.Link l ])))
          plan;
        Sync.Ivar.fill wired ())
  in

  let source =
    W.spawn world ~node:0 ~name:"source" (fun p ->
        let head = Sync.Ivar.read first_stage in
        let expect x = List.fold_left (fun acc (_, f) -> f acc) x stages in
        for x = 1 to n_items do
          match P.call p head ~op:"item" [ V.Int x ] with
          | [ V.Int y ] ->
            Printf.printf "  item %2d -> %4d (expected %4d) at %s\n" x y
              (expect x)
              (Time.to_string (Engine.now engine))
          | _ -> Printf.printf "  item %d -> ?\n" x
        done)
  in

  ignore
    (Engine.spawn engine ~name:"wiring" (fun () ->
         (* control <-> stage_i links. *)
         let ctrl_links =
           List.map
             (fun m ->
               let c_end, _ = W.link_between world control m in
               c_end)
             stage_members
         in
         (* For each consecutive pair, a link created between control and
            stage_{i+1}; control moves its end to stage_i via "wire". *)
         let rec downs = function
           | _ :: (m2 :: _ as rest) ->
             let to_next, _ = W.link_between world control m2 in
             Some to_next :: downs rest
           | _ -> [ None ]
         in
         Sync.Ivar.fill control_plan
           (List.combine ctrl_links (downs stage_members));
         Sync.Ivar.read wired;
         let src_end, _ = W.link_between world source (List.hd stage_members) in
         Sync.Ivar.fill first_stage src_end));

  Engine.run engine;
  Printf.printf "simulated time: %s\n" (Time.to_string (Engine.now engine))
