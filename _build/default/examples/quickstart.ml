(* Quickstart: a LYNX remote procedure call between two processes.

   Run with:   dune exec examples/quickstart.exe [charlotte|soda|chrysalis]

   A server process serves an "add" operation on a link; a client calls
   it.  The same program runs unchanged on all three simulated operating
   systems — only the World module differs. *)

open Sim
module P = Lynx.Process

let run (module W : Harness.Backend_world.WORLD) =
  let engine = Engine.create () in
  let world = W.create engine ~nodes:4 in

  (* The server registers a typed handler and serves forever. *)
  let server =
    W.spawn world ~daemon:true ~node:0 ~name:"adder" (fun p ->
        let links = P.await_request p () in
        (* First request arrives before any serve registration: handle it
           directly, then register a handler for the rest. *)
        (match links.P.in_args with
        | [ Lynx.Value.Int a; Lynx.Value.Int b ] ->
          links.P.in_reply [ Lynx.Value.Int (a + b) ]
        | _ -> links.P.in_reply []);
        P.serve p links.P.in_link ~op:"add"
          ~sg:(Lynx.Ty.signature [ Lynx.Ty.Int; Lynx.Ty.Int ] ~results:[ Lynx.Ty.Int ])
          (function
            | [ Lynx.Value.Int a; Lynx.Value.Int b ] -> [ Lynx.Value.Int (a + b) ]
            | _ -> assert false (* signature-checked *));
        (* Keep serving until the simulation ends. *)
        P.sleep p (Time.sec 10))
  in

  let link_for_client = Sync.Ivar.create engine in
  let client =
    W.spawn world ~node:1 ~name:"client" (fun p ->
        let lnk = Sync.Ivar.read link_for_client in
        for i = 1 to 3 do
          let t0 = Engine.now engine in
          match
            P.call p lnk ~op:"add"
              ~expect:[ Lynx.Ty.Int ]
              [ Lynx.Value.Int i; Lynx.Value.Int (10 * i) ]
          with
          | [ Lynx.Value.Int sum ] ->
            Printf.printf "  %d + %d = %d   (%.2f ms on %s)\n" i (10 * i) sum
              (Time.to_ms (Time.sub (Engine.now engine) t0))
              W.name
          | _ -> print_endline "  unexpected reply"
        done)
  in

  (* A parent would normally hand the processes their first link; the
     harness provides the same service. *)
  ignore
    (Engine.spawn engine ~name:"parent" (fun () ->
         let client_end, _server_end = W.link_between world client server in
         Sync.Ivar.fill link_for_client client_end));

  Engine.run engine;
  Printf.printf "simulated time: %s\n" (Time.to_string (Engine.now engine))

let () =
  let backend = if Array.length Sys.argv > 1 then Sys.argv.(1) else "chrysalis" in
  Printf.printf "LYNX quickstart on %s\n" backend;
  run (Harness.Backend_world.find_exn backend)
