(* Ring: a token circulating through a ring of LYNX processes.

   Run with:   dune exec examples/ring.exe [backend] [processes] [rounds]

   Each process serves "token" on its inbound link and forwards the
   (incremented) token on its outbound link before replying upstream —
   so a full round is a chain of nested remote operations around the
   ring.  A classic latency pattern: one round costs about
   [processes] x (simple remote op), making the three kernels' relative
   speeds directly visible. *)

open Sim
module P = Lynx.Process
module V = Lynx.Value

let () =
  let backend = if Array.length Sys.argv > 1 then Sys.argv.(1) else "chrysalis" in
  let n = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5 in
  let rounds =
    if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 3
  in
  Printf.printf "Token ring: %d processes, %d rounds, on %s\n" n rounds backend;
  let (module W) = Harness.Backend_world.find_exn backend in
  let engine = Engine.create () in
  let world = W.create engine ~nodes:(n + 1) in

  (* Station i: waits for the token on its inbound link and forwards it
     on its outbound link.  Station 0 (the injector) closes each round
     instead of forwarding forever. *)
  let stations =
    List.init n (fun i ->
        W.spawn world ~daemon:true ~node:i ~name:(Printf.sprintf "s%d" i)
          (fun p ->
            if i = 0 then begin
              (* Injector: kicks the token and measures each round. *)
              let rec wait_out () =
                match P.live_links p with
                | l :: _ -> l
                | [] ->
                  P.sleep p (Time.ms 1);
                  wait_out ()
              in
              let out = wait_out () in
              for round = 1 to rounds do
                let t0 = Engine.now engine in
                match P.call p out ~op:"token" [ V.Int 0 ] with
                | [ V.Int hops ] ->
                  Printf.printf "  round %d: %d hops in %s\n" round hops
                    (Time.to_string (Time.sub (Engine.now engine) t0))
                | _ -> print_endline "  token lost!"
              done
            end
            else begin
              (* Relays hold an inbound link (from station i-1, wired
                 first, so it has the smaller id) and — except for the
                 last station — an outbound link to station i+1. *)
              let wanted = if i = n - 1 then 1 else 2 in
              let rec wait_links () =
                let ls = P.live_links p in
                if List.length ls >= wanted then ls
                else begin
                  P.sleep p (Time.ms 1);
                  wait_links ()
                end
              in
              let inbound, outbound =
                match wait_links () with
                | [ a ] -> (a, None)
                | a :: b :: _ -> (a, Some b)
                | [] -> assert false
              in
              P.open_queue p inbound;
              let rec serve () =
                let inc = P.await_request p ~links:[ inbound ] () in
                (match (inc.P.in_args, outbound) with
                | [ V.Int hops ], None ->
                  (* Last station: the round is complete. *)
                  inc.P.in_reply [ V.Int (hops + 1) ]
                | [ V.Int hops ], Some out -> (
                  match P.call p out ~op:"token" [ V.Int (hops + 1) ] with
                  | [ V.Int total ] -> inc.P.in_reply [ V.Int total ]
                  | _ -> inc.P.in_reply [])
                | _ -> inc.P.in_reply []);
                serve ()
              in
              try serve () with Lynx.Excn.Link_destroyed -> ()
            end))
  in

  ignore
    (Engine.spawn engine ~name:"wiring" (fun () ->
         (* Wire s0 -> s1 -> ... -> s(n-1); replies travel back down the
            chain, closing the ring logically. *)
         let arr = Array.of_list stations in
         for i = 1 to n - 1 do
           (* Station i's inbound comes from station i-1. *)
           ignore (W.link_between world arr.(i - 1) arr.(i))
         done));

  Engine.run engine;
  Printf.printf "simulated time: %s\n" (Time.to_string (Engine.now engine))
