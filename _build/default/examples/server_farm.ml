(* Server farm: a master hands out links to worker processes.

   Run with:   dune exec examples/server_farm.exe [backend]

   This is the long-lived-server pattern the paper says LYNX was built
   for: clients designed in isolation talk to a master they did not
   compile against.  The master owns one end of a link to each worker;
   when a client asks for capacity, the master moves worker-link ends to
   the client inside the reply (on Charlotte this exercises the
   multiple-enclosure protocol of figure 2).  The client then calls the
   workers directly and returns the links when done. *)

open Sim
module P = Lynx.Process
module V = Lynx.Value

let n_workers = 3

let () =
  let backend = if Array.length Sys.argv > 1 then Sys.argv.(1) else "chrysalis" in
  Printf.printf "Server farm on %s: 1 master, %d workers, 1 client\n" backend
    n_workers;
  let (module W) = Harness.Backend_world.find_exn backend in
  let engine = Engine.create () in
  let world = W.create engine ~nodes:8 in

  (* Workers: serve "work" on whatever link they are given. *)
  let workers =
    List.init n_workers (fun i ->
        W.spawn world ~daemon:true ~node:(2 + i)
          ~name:(Printf.sprintf "worker%d" i) (fun p ->
            let rec serve () =
              let inc = P.await_request p () in
              (match inc.P.in_args with
              | [ V.Int x ] ->
                P.sleep p (Time.ms 2) (* simulated computation *);
                inc.P.in_reply [ V.Int (x * x) ]
              | _ -> inc.P.in_reply []);
              serve ()
            in
            try serve () with Lynx.Excn.Link_destroyed -> ()))
  in

  (* Master: owns a link to every worker; leases the whole pool to a
     client in a single reply carrying n_workers enclosures. *)
  let master =
    W.spawn world ~daemon:true ~node:0 ~name:"master" (fun p ->
        let rec serve () =
          let inc = P.await_request p () in
          (match inc.P.in_op with
          | "lease" ->
            let pool = P.live_links p in
            let lend =
              List.filteri (fun i _ -> i < n_workers)
                (List.filter (fun l -> l.Lynx.Link.lid <> inc.P.in_link.Lynx.Link.lid) pool)
            in
            Printf.printf "  master leases %d worker links\n" (List.length lend);
            inc.P.in_reply (List.map (fun l -> V.Link l) lend)
          | "return" ->
            Printf.printf "  master got %d links back\n"
              (List.length (V.links_of_list inc.P.in_args));
            inc.P.in_reply []
          | _ -> inc.P.in_reply []);
          serve ()
        in
        try serve () with Lynx.Excn.Link_destroyed -> ())
  in

  let master_link = Sync.Ivar.create engine in
  let client =
    W.spawn world ~node:1 ~name:"client" (fun p ->
        let m = Sync.Ivar.read master_link in
        let leased = P.call p m ~op:"lease" [] in
        let links = V.links_of_list leased in
        Printf.printf "  client got %d worker links\n" (List.length links);
        (* Fan work out to every worker (each call is a coroutine). *)
        let results = ref [] in
        let pending = ref (List.length links) in
        let done_ = Sync.Ivar.create engine in
        List.iteri
          (fun i l ->
            P.spawn_thread p (fun () ->
                (match P.call p l ~op:"work" [ V.Int (i + 2) ] with
                | [ V.Int r ] -> results := (i + 2, r) :: !results
                | _ -> ());
                decr pending;
                if !pending = 0 then Sync.Ivar.fill done_ ()))
          links;
        Sync.Ivar.read done_;
        List.iter
          (fun (x, r) -> Printf.printf "  worker says %d^2 = %d\n" x r)
          (List.sort compare !results);
        (* Move the ends back to the master. *)
        ignore (P.call p m ~op:"return" (List.map (fun l -> V.Link l) links));
        Printf.printf "  client done at %s\n" (Time.to_string (Engine.now engine)))
  in

  ignore
    (Engine.spawn engine ~name:"parent" (fun () ->
         (* Master gets a link to each worker, client gets one to the master. *)
         List.iter
           (fun worker -> ignore (W.link_between world master worker))
           workers;
         let client_end, _ = W.link_between world client master in
         Sync.Ivar.fill master_link client_end));

  Engine.run engine;
  let sts = W.stats world in
  (match Stats.get sts "lynx_charlotte.pkt_sent.enc" with
  | 0 -> ()
  | n ->
    Printf.printf
      "  (Charlotte needed %d extra enc packets and %d goaheads to move the pool)\n"
      n
      (Stats.get sts "lynx_charlotte.pkt_sent.goahead"));
  Printf.printf "simulated time: %s\n" (Time.to_string (Engine.now engine))
