(* Name service: programs designed in isolation find each other.

   Run with:   dune exec examples/name_service.exe [backend]

   The paper motivates LYNX with "interaction ... between separate
   applications and between user programs and long-lived system
   servers".  Here a name server (Lynx.Nameserver) is the only
   rendezvous: two independent providers register "greeter" and
   "counter"; a client that knows nothing about them looks the names up
   and receives private links, manufactured on demand by moving fresh
   link ends provider -> name server -> client. *)

open Sim
module P = Lynx.Process
module L = Lynx.Lang
module NS = Lynx.Nameserver

let greet_op = L.defop ~name:"greet" ~req:L.str ~resp:L.str
let next_op = L.defop ~name:"next" ~req:L.unit ~resp:L.int

let wait_first_link p =
  let rec go () =
    match P.live_links p with
    | l :: _ -> l
    | [] ->
      P.sleep p (Time.ms 1);
      go ()
  in
  go ()

let () =
  let backend = if Array.length Sys.argv > 1 then Sys.argv.(1) else "chrysalis" in
  Printf.printf "Name service on %s\n" backend;
  let (module W) = Harness.Backend_world.find_exn backend in
  let engine = Engine.create () in
  let world = W.create engine ~nodes:6 in

  let ns_member =
    W.spawn world ~daemon:true ~node:0 ~name:"nameserver" NS.body
  in

  let greeter =
    W.spawn world ~daemon:true ~node:1 ~name:"greeter" (fun p ->
        let ns = wait_first_link p in
        NS.serve_clones p ~ns ~on_client:(fun mine ->
            L.serve p mine greet_op (fun who -> "hello, " ^ who ^ "!"));
        NS.register p ~ns ~name:"greeter";
        P.park p)
  in

  let counter =
    W.spawn world ~daemon:true ~node:2 ~name:"counter" (fun p ->
        let ns = wait_first_link p in
        let count = ref 0 in
        NS.serve_clones p ~ns ~on_client:(fun mine ->
            L.serve p mine next_op (fun () ->
                incr count;
                !count));
        NS.register p ~ns ~name:"counter";
        P.park p)
  in

  let client =
    W.spawn world ~node:3 ~name:"client" (fun p ->
        let ns = wait_first_link p in
        P.sleep p (Time.ms 300) (* let the providers register *);
        Printf.printf "  registered services: %s\n"
          (String.concat ", " (NS.list_names p ~ns));
        (match NS.lookup p ~ns ~name:"greeter" with
        | Some svc ->
          Printf.printf "  greeter says: %S\n" (L.call p svc greet_op "world")
        | None -> print_endline "  greeter not found");
        (match NS.lookup p ~ns ~name:"counter" with
        | Some svc ->
          for _ = 1 to 3 do
            Printf.printf "  counter: %d\n" (L.call p svc next_op ())
          done
        | None -> print_endline "  counter not found");
        match NS.lookup p ~ns ~name:"no-such-thing" with
        | Some _ -> ()
        | None -> print_endline "  (and unknown names resolve to nothing)")
  in

  ignore
    (Engine.spawn engine ~name:"wiring" (fun () ->
         List.iter
           (fun m -> ignore (W.link_between world m ns_member))
           [ greeter; counter; client ]));

  Engine.run engine;
  Printf.printf "simulated time: %s\n" (Time.to_string (Engine.now engine))
