(* Link passing: figure 1 of the paper, as a runnable demo.

   Run with:   dune exec examples/link_passing.exe [backend]

   Processes A and D are connected by link 3.  A encloses its end in a
   message to B while — simultaneously — D encloses its end in a message
   to C.  Neither mover knows about the other, yet the link survives:
   what used to connect A to D now connects B to C, proven by a ping.

   Run it on "charlotte" to watch the kernel's move machinery (three-way
   agreement cost, enclosure packets); on "soda"/"chrysalis" the move is
   just a hint update. *)

let () =
  let backend = if Array.length Sys.argv > 1 then Sys.argv.(1) else "chrysalis" in
  Printf.printf "Figure 1 (simultaneous move of both ends) on %s\n" backend;
  let (module W) = Harness.Backend_world.find_exn backend in
  let o = Harness.Scenarios.simultaneous_move (module W) in
  Printf.printf "  outcome: %s  (%.2f ms of simulated time)\n" o.o_detail
    (Sim.Time.to_ms o.o_duration);
  print_endline "  interesting counters:";
  List.iter
    (fun (k, v) ->
      let interesting =
        List.exists
          (fun prefix ->
            String.length k >= String.length prefix
            && String.sub k 0 (String.length prefix) = prefix)
          [
            "charlotte.move_protocol";
            "charlotte.kernel_msgs";
            "lynx_charlotte.pkt";
            "lynx_soda.ends_";
            "lynx_soda.redirects";
            "lynx_soda.moved_";
            "lynx_soda.stale_hints";
            "lynx_chrysalis.ends_adopted";
            "chrysalis.maps";
          ]
      in
      if interesting && v <> 0 then Printf.printf "    %-42s %d\n" k v)
    o.o_counters;
  if not o.o_ok then exit 1
